package sim

import "fmt"

// Proc is a simulated sequential process (an aP program, a firmware handler
// loop, a traffic generator). A Proc runs on its own goroutine but in strict
// handoff with the engine: the engine resumes it, then blocks until the Proc
// either blocks again (Delay, Cond.Wait, Call) or returns. Exactly one
// goroutine is ever runnable, preserving determinism.
//
// The handoff is a single unbuffered rendezvous channel used as a baton:
// ownership of execution strictly alternates, so every transfer is exactly
// one send/receive pair. Both resume-closures (run as an engine event) and
// the Call completion callback are bound once at Spawn, so the steady-state
// block/resume cycle performs no allocation.
type Proc struct {
	eng  *Engine
	name string
	ch   chan struct{} // rendezvous baton between engine and proc goroutine
	dead bool

	// Profiler attribution given at SpawnOn: the node and component this
	// proc executes on (an aP program, sP firmware). Plain Spawn leaves them
	// at (-1, ""), which the profiler groups as "host".
	onNode    int
	component string

	// runFn is the prebound p.run method value: scheduling a wakeup is
	// `eng.Schedule(d, p.runFn)` with no per-wakeup closure allocation.
	runFn func()

	// Completion state of the innermost active Call, plus the prebound
	// done callback handed to start. Only the outermost Call on a Proc uses
	// this fast path; nested Calls (a start function that itself Calls) fall
	// back to a private closure, so the shared state is never aliased.
	callActive    bool
	callCompleted bool
	callBlocked   bool
	doneFn        func()
}

// Spawn starts body as a new process at the current simulated time.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnOn(-1, "", name, body)
}

// SpawnOn is Spawn with a (node, component) attribution for the
// simulated-time profiler: the proc's lifetime buckets roll up under
// "node<n>/<component>" (e.g. "node0/aP", "node2/sP") in profile exports.
// Timing and scheduling are identical to Spawn.
func (e *Engine) SpawnOn(node int, component, name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:       e,
		name:      name,
		ch:        make(chan struct{}),
		onNode:    node,
		component: component,
	}
	p.runFn = p.run
	p.doneFn = p.callDone
	e.procs++
	if e.prof != nil {
		e.prof.ProcStart(e.now, p)
	}
	go func() {
		<-p.ch
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
			}
			if e.prof != nil {
				e.prof.ProcEnd(e.now, p)
			}
			p.dead = true
			e.procs--
			p.ch <- struct{}{}
		}()
		body(p)
	}()
	e.Schedule(0, p.runFn)
	return p
}

// Origin returns the (node, component) attribution given at SpawnOn, or
// (-1, "") for a plain Spawn.
func (p *Proc) Origin() (node int, component string) { return p.onNode, p.component }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// run transfers control to the process goroutine and waits for it to yield.
// It must only be called from an engine event.
//
//voyager:noalloc
func (p *Proc) run() {
	if p.dead {
		panic(fmt.Sprintf("sim: resuming dead proc %q", p.name)) //voyager:alloc-ok(panic path)
	}
	// Track the currently executing proc for the profiler's frame hooks.
	// Saving and restoring (rather than clearing) keeps nested resumes
	// correct: a Call completion delivered while another proc executes runs
	// this proc's window inside the outer one.
	e := p.eng
	prev := e.curProc
	e.curProc = p
	if e.prof != nil {
		e.prof.ProcResume(e.now, p)
	}
	p.ch <- struct{}{}
	<-p.ch
	e.curProc = prev
}

// block yields control back to the engine. The caller must have arranged a
// wakeup (a scheduled event or Cond registration) that calls p.run().
//
//voyager:noalloc
func (p *Proc) block() {
	p.ch <- struct{}{}
	<-p.ch
}

// Delay advances the process by d of simulated time (modeling computation or
// a fixed-latency operation).
//
//voyager:noalloc
func (p *Proc) Delay(d Time) {
	if d == 0 {
		return
	}
	p.eng.Schedule(d, p.runFn)
	if pr := p.eng.prof; pr != nil {
		pr.ProcBlock(p.eng.now, p, BlockBusy, "")
	}
	p.block()
}

// Call invokes start, which must eventually invoke the provided done
// callback (possibly immediately, possibly from a later event); the process
// blocks until then. It adapts callback-style component APIs to blocking
// style:
//
//	p.Call(func(done func()) { busPort.Issue(tx, done) })
//
// The common path — start completes synchronously (a bus issue that is
// granted immediately) — allocates nothing: the done callback is the
// Proc's prebound doneFn and the completion state lives in the Proc.
//
//voyager:noalloc the immediate-completion path; nested Calls take callSlow
func (p *Proc) Call(start func(done func())) {
	if p.callActive {
		// Nested Call (start itself blocked on another Call): give the inner
		// call private state so an outer completion arriving while the inner
		// call is blocked cannot be misattributed.
		p.callSlow(start) //voyager:alloc-ok(nested Calls are the audited closure-per-call slow path)
		return
	}
	p.callActive = true
	p.callCompleted = false
	p.callBlocked = false
	start(p.doneFn)
	if !p.callCompleted {
		p.callBlocked = true
		if pr := p.eng.prof; pr != nil {
			pr.ProcBlock(p.eng.now, p, BlockBusy, "")
		}
		p.block()
	}
	p.callActive = false
}

// callDone is the prebound completion callback for the Call fast path.
//
//voyager:noalloc
func (p *Proc) callDone() {
	if !p.callActive || p.callCompleted {
		panic(fmt.Sprintf("sim: double completion in proc %q", p.name)) //voyager:alloc-ok(panic path)
	}
	p.callCompleted = true
	if p.callBlocked {
		p.run()
	}
}

// callSlow is the closure-per-call implementation used for nested Calls.
func (p *Proc) callSlow(start func(done func())) {
	completed := false
	blocked := false
	start(func() {
		if completed {
			panic(fmt.Sprintf("sim: double completion in proc %q", p.name))
		}
		completed = true
		if blocked {
			p.run()
		}
	})
	if !completed {
		blocked = true
		if pr := p.eng.prof; pr != nil {
			pr.ProcBlock(p.eng.now, p, BlockBusy, "")
		}
		p.block()
	}
}

// CallT is like Call but passes through a value from the completion.
func CallT[T any](p *Proc, start func(done func(T))) T {
	var v T
	p.Call(func(done func()) {
		start(func(x T) {
			v = x
			done()
		})
	})
	return v
}
