package sim

import "fmt"

// Proc is a simulated sequential process (an aP program, a firmware handler
// loop, a traffic generator). A Proc runs on its own goroutine but in strict
// handoff with the engine: the engine resumes it, then blocks until the Proc
// either blocks again (Delay, Cond.Wait, Call) or returns. Exactly one
// goroutine is ever runnable, preserving determinism.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	dead   bool
}

// Spawn starts body as a new process at the current simulated time.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
			}
			p.dead = true
			e.procs--
			p.yield <- struct{}{}
		}()
		body(p)
	}()
	e.Schedule(0, func() { p.run() })
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// run transfers control to the process goroutine and waits for it to yield.
// It must only be called from an engine event.
func (p *Proc) run() {
	if p.dead {
		panic(fmt.Sprintf("sim: resuming dead proc %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.yield
}

// block yields control back to the engine. The caller must have arranged a
// wakeup (a scheduled event or Cond registration) that calls p.run().
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Delay advances the process by d of simulated time (modeling computation or
// a fixed-latency operation).
func (p *Proc) Delay(d Time) {
	if d == 0 {
		return
	}
	p.eng.Schedule(d, p.run)
	p.block()
}

// Call invokes start, which must eventually invoke the provided done
// callback (possibly immediately, possibly from a later event); the process
// blocks until then. It adapts callback-style component APIs to blocking
// style:
//
//	p.Call(func(done func()) { busPort.Issue(tx, done) })
func (p *Proc) Call(start func(done func())) {
	completed := false
	blocked := false
	start(func() {
		if completed {
			panic(fmt.Sprintf("sim: double completion in proc %q", p.name))
		}
		completed = true
		if blocked {
			p.run()
		}
	})
	if !completed {
		blocked = true
		p.block()
	}
}

// CallT is like Call but passes through a value from the completion.
func CallT[T any](p *Proc, start func(done func(T))) T {
	var v T
	p.Call(func(done func()) {
		start(func(x T) {
			v = x
			done()
		})
	})
	return v
}
