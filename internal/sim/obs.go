package sim

import "strconv"

// This file is the engine-side half of the observability layer: a single
// Observer hook through which every instrumented component emits structured
// events (spans, instants, counter samples). Emission is opt-in — with no
// observer installed every hook is a nil-check no-op, so instrumentation has
// zero effect on simulated timing and near-zero wall-clock cost.
//
// All timestamps are simulated time (never wall clock) and span ids come
// from a deterministic engine counter, so identically-seeded runs produce
// byte-identical traces.

// fieldKind selects how a Field's value renders.
type fieldKind uint8

const (
	fieldStr fieldKind = iota
	fieldInt
	fieldHex
)

// Field is one key/value attribute attached to an observed event. Values
// are stored unformatted; rendering happens only at export time, keeping
// emission cheap.
type Field struct {
	Key  string
	kind fieldKind
	s    string
	i    int64
}

// Str returns a string-valued field.
func Str(key, val string) Field { return Field{Key: key, kind: fieldStr, s: val} }

// I64 returns an integer-valued field.
func I64(key string, v int64) Field { return Field{Key: key, kind: fieldInt, i: v} }

// Int is I64 for int values.
func Int(key string, v int) Field { return I64(key, int64(v)) }

// Hex returns an integer field rendered in hexadecimal (addresses).
func Hex(key string, v uint64) Field { return Field{Key: key, kind: fieldHex, i: int64(v)} }

// Int64 returns the field's integer value when it holds one (I64/Int/Hex
// fields). Analyzers use it to read numeric attributes without re-parsing
// the rendered string.
func (f Field) Int64() (int64, bool) {
	if f.kind == fieldInt || f.kind == fieldHex {
		return f.i, true
	}
	return 0, false
}

// Value renders the field's value deterministically.
func (f Field) Value() string {
	switch f.kind {
	case fieldInt:
		return strconv.FormatInt(f.i, 10)
	case fieldHex:
		return "0x" + strconv.FormatUint(uint64(f.i), 16)
	default:
		return f.s
	}
}

// Observer receives instrumentation events from the engine. Implementations
// must not schedule events or otherwise perturb the simulation. The
// (node, component) pair names the track an event belongs to.
type Observer interface {
	// SpanBegin opens span id on track (node, component).
	SpanBegin(at Time, node int, component, name string, id uint64, fields []Field)
	// SpanEnd closes span id opened on the same track.
	SpanEnd(at Time, node int, component string, id uint64, fields []Field)
	// Instant records a point event.
	Instant(at Time, node int, component, name string, fields []Field)
	// CounterSample records the current value of a named quantity (queue
	// depth, occupancy count) on the track.
	CounterSample(at Time, node int, component, name string, value int64)
}

// SetObserver installs (or, with nil, removes) the instrumentation sink.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// Observed reports whether an observer is installed. Components guard
// expensive field construction on it.
func (e *Engine) Observed() bool { return e.obs != nil }

// Span is an open span handle. The zero Span is inert: End on it is a no-op,
// so emitters need no observer check around the End call.
type Span struct {
	e         *Engine
	id        uint64
	node      int
	component string
}

// BeginSpan opens a span on track (node, component) at the current time and
// returns its handle. With no observer installed it returns the inert zero
// Span.
func (e *Engine) BeginSpan(node int, component, name string, fields ...Field) Span {
	if e.obs == nil {
		return Span{}
	}
	e.spanSeq++
	e.obs.SpanBegin(e.now, node, component, name, e.spanSeq, fields)
	return Span{e: e, id: e.spanSeq, node: node, component: component}
}

// End closes the span at the engine's current time.
func (s Span) End(fields ...Field) {
	if s.e == nil || s.e.obs == nil {
		return
	}
	s.e.obs.SpanEnd(s.e.now, s.node, s.component, s.id, fields)
}

// Active reports whether the span was actually opened (observer installed).
func (s Span) Active() bool { return s.e != nil }

// Instant emits a point event on track (node, component).
func (e *Engine) Instant(node int, component, name string, fields ...Field) {
	if e.obs == nil {
		return
	}
	e.obs.Instant(e.now, node, component, name, fields)
}

// Sample emits the current value of a named counter (queue depth, in-flight
// count) on track (node, component).
func (e *Engine) Sample(node int, component, name string, value int64) {
	if e.obs == nil {
		return
	}
	e.obs.CounterSample(e.now, node, component, name, value)
}

// MsgTag is the causal trace context carried alongside one message through
// every layer it crosses (aP slot, TX queue, frame, fabric packet, RX queue,
// sP dispatch). It models the sideband trace tag of a hardware trace unit:
// it rides next to the data, is never encoded on the wire, and therefore
// survives payload corruption.
//
// ID is the per-engine message id (0 = untraced: no observer was installed
// when the message entered the system, and every emission keyed on it is
// skipped). Attempt distinguishes retransmissions of the same logical
// message (0 or 1 = first send). Parent links a derived message — an ACK, a
// DMA chunk, a notification — to the message whose handling caused it.
type MsgTag struct {
	ID      uint64
	Attempt uint32
	Parent  uint64
}

// Traced reports whether the tag identifies a traced message.
func (t MsgTag) Traced() bool { return t.ID != 0 }

// NewMsgID allocates the next deterministic message id, or 0 when no
// observer is installed (untraced runs pay nothing and the counter stays
// untouched, keeping traced and untraced runs causally identical).
func (e *Engine) NewMsgID() uint64 {
	if e.obs == nil {
		return 0
	}
	e.msgSeq++
	return e.msgSeq
}
