package sim

// Resource is an exclusive-use resource (a bus, the IBus, a DMA engine port)
// with FIFO granting and busy-time accounting. Requests are served strictly
// in arrival order; each holder releases explicitly.
type Resource struct {
	eng       *Engine
	name      string
	busy      bool
	queue     []func() // pending grant callbacks
	busySince Time
	busyTotal Time
	grants    uint64

	// useFree recycles useReq records so the steady-state Use cycle —
	// acquire, hold for d, release, notify — allocates nothing.
	useFree []*useReq
	// acquireFn is the prebound Acquire method value handed to Proc.Call by
	// AcquireP; usePD stages UseP's duration for usePStart, which Call
	// invokes synchronously.
	acquireFn func(func())
	usePFn    func(func())
	usePD     Time

	// Observation state (see Observe): each hold becomes a span on track
	// (obsNode, obsComp) and waiter-queue depth is sampled on change.
	observed    bool
	obsNode     int
	obsComp     string
	waitersName string
	span        Span
}

// NewResource returns an idle resource.
func NewResource(e *Engine, name string) *Resource {
	r := &Resource{eng: e, name: name}
	r.acquireFn = r.Acquire
	r.usePFn = r.usePStart
	return r
}

// Observe puts each hold of the resource on the observability track
// (node, component) as a span named after the resource, and samples the
// waiter-queue depth whenever it changes. With no engine observer installed
// the emission calls are no-ops.
func (r *Resource) Observe(node int, component string) {
	r.observed = true
	r.obsNode = node
	r.obsComp = component
	r.waitersName = r.name + "-waiters"
}

func (r *Resource) grant() {
	r.busy = true
	r.busySince = r.eng.now
	r.grants++
	if r.observed {
		r.span = r.eng.BeginSpan(r.obsNode, r.obsComp, r.name)
	}
}

// Acquire requests the resource; granted runs (as an engine event) once the
// resource is exclusively held by the caller.
func (r *Resource) Acquire(granted func()) {
	if !r.busy {
		r.grant()
		r.eng.Schedule(0, granted)
		return
	}
	r.queue = append(r.queue, granted)
	if r.observed {
		r.eng.Sample(r.obsNode, r.obsComp, r.waitersName, int64(len(r.queue)))
	}
}

// Release relinquishes the resource, granting it to the next waiter if any.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: release of idle resource " + r.name)
	}
	r.busyTotal += r.eng.now - r.busySince
	r.busy = false
	if r.observed {
		r.span.End()
		r.span = Span{}
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		if r.observed {
			r.eng.Sample(r.obsNode, r.obsComp, r.waitersName, int64(len(r.queue)))
		}
		r.grant()
		r.eng.Schedule(0, next)
	}
}

// useReq is one in-flight Use: a recycled record whose prebound method
// values stand in for the closures this pattern used to allocate. The event
// sequence (grant at +0, release after d, then done) is unchanged.
type useReq struct {
	r         *Resource
	d         Time
	done      func()
	grantedFn func()
	expireFn  func()
}

//voyager:noalloc
func (u *useReq) granted() {
	u.r.eng.Schedule(u.d, u.expireFn)
}

//voyager:noalloc
func (u *useReq) expire() {
	r, done := u.r, u.done
	u.done = nil
	r.useFree = append(r.useFree, u) //voyager:alloc-ok(amortized: pool backing array is retained)
	r.Release()
	if done != nil {
		done()
	}
}

// Use acquires the resource, holds it for d, then releases it, invoking done
// (if non-nil) at release time. It is the common "occupy for a fixed service
// time" pattern.
//
//voyager:noalloc steady-state uses ride a recycled useReq record
func (r *Resource) Use(d Time, done func()) {
	var u *useReq
	if n := len(r.useFree); n > 0 {
		u = r.useFree[n-1]
		r.useFree = r.useFree[:n-1]
	} else {
		u = &useReq{r: r}       //voyager:alloc-ok(pool warm-up; recycled thereafter)
		u.grantedFn = u.granted //voyager:alloc-ok(one-time method binding for the pooled record)
		u.expireFn = u.expire   //voyager:alloc-ok(one-time method binding for the pooled record)
	}
	u.d = d
	u.done = done
	r.Acquire(u.grantedFn)
}

// UseP is the blocking form of Use for Procs. The duration is staged on the
// resource and consumed synchronously by usePStart, so no adapter closure is
// built per call.
//
//voyager:noalloc
func (r *Resource) UseP(p *Proc, d Time) {
	r.usePD = d
	p.Call(r.usePFn)
}

//voyager:noalloc
func (r *Resource) usePStart(done func()) {
	r.Use(r.usePD, done)
}

// AcquireP blocks p until it exclusively holds the resource; the caller must
// Release it explicitly.
//
//voyager:noalloc
func (r *Resource) AcquireP(p *Proc) {
	p.Call(r.acquireFn)
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusyTime returns accumulated held time (including the current hold, if
// any, up to now).
func (r *Resource) BusyTime() Time {
	t := r.busyTotal
	if r.busy {
		t += r.eng.now - r.busySince
	}
	return t
}

// Grants returns the number of times the resource has been granted.
func (r *Resource) Grants() uint64 { return r.grants }

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }
