package sim

import (
	"testing"
)

func TestProcDelay(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("p", func(p *Proc) {
		at = append(at, p.Now())
		p.Delay(100)
		at = append(at, p.Now())
		p.Delay(0) // zero delay must not yield/advance
		at = append(at, p.Now())
		p.Delay(50)
		at = append(at, p.Now())
	})
	e.Run()
	want := []Time{0, 100, 100, 150}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("at = %v, want %v", at, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Spawn("a", func(p *Proc) {
		log = append(log, "a0")
		p.Delay(10)
		log = append(log, "a1")
		p.Delay(20)
		log = append(log, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		log = append(log, "b0")
		p.Delay(15)
		log = append(log, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestProcCallImmediate(t *testing.T) {
	e := NewEngine()
	done := false
	e.Spawn("p", func(p *Proc) {
		// Completion invoked synchronously inside start.
		p.Call(func(cb func()) { cb() })
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("proc did not complete")
	}
}

func TestProcCallDeferred(t *testing.T) {
	e := NewEngine()
	var completedAt Time
	e.Spawn("p", func(p *Proc) {
		p.Call(func(cb func()) { e.Schedule(77, cb) })
		completedAt = p.Now()
	})
	e.Run()
	if completedAt != 77 {
		t.Fatalf("completed at %v, want 77", completedAt)
	}
}

func TestCallT(t *testing.T) {
	e := NewEngine()
	var got int
	e.Spawn("p", func(p *Proc) {
		got = CallT(p, func(done func(int)) {
			e.Schedule(5, func() { done(42) })
		})
	})
	e.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("proc panic not propagated to Run")
		}
	}()
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Delay(10)
		panic("boom")
	})
	e.Run()
}

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Delay(10)
		if c.Waiting() != 3 {
			t.Errorf("waiting = %d, want 3", c.Waiting())
		}
		c.Signal()
		p.Delay(10)
		c.Broadcast()
	})
	e.Run()
	want := []string{"x", "y", "z"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.BlockedProcs() != 0 {
		t.Fatalf("blocked = %d", e.BlockedProcs())
	}
}

func TestCondDeadlockDetectable(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	e.Run()
	if e.BlockedProcs() != 1 {
		t.Fatalf("blocked = %d, want 1", e.BlockedProcs())
	}
	if e.LiveProcs() != 1 {
		t.Fatalf("live = %d, want 1", e.LiveProcs())
	}
}

func TestGate(t *testing.T) {
	e := NewEngine()
	g := NewGate(e)
	var times []Time
	e.Spawn("early", func(p *Proc) {
		g.Wait(p)
		times = append(times, p.Now())
	})
	e.Spawn("opener", func(p *Proc) {
		p.Delay(30)
		g.Open()
		g.Open() // idempotent
	})
	e.Spawn("late", func(p *Proc) {
		p.Delay(100)
		g.Wait(p) // already open: returns immediately
		times = append(times, p.Now())
	})
	e.Run()
	if times[0] != 30 || times[1] != 100 {
		t.Fatalf("times = %v", times)
	}
	if !g.IsOpen() || g.OpenedAt() != 30 {
		t.Fatalf("gate open=%v at=%v", g.IsOpen(), g.OpenedAt())
	}
}

func TestQueueBlockingPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Delay(10)
			q.Push(i)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty succeeded")
	}
	q.Push("a")
	q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "a" {
		t.Fatalf("got %q, %v", v, ok)
	}
}

func TestResourceFIFOAndAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Schedule(0, func() {
			r.Use(10, func() { order = append(order, i) })
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30 (serialized)", e.Now())
	}
	if r.BusyTime() != 30 {
		t.Fatalf("busy = %v, want 30", r.BusyTime())
	}
	if r.Grants() != 3 {
		t.Fatalf("grants = %d", r.Grants())
	}
}

func TestResourceUseP(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	var aDone, bDone Time
	e.Spawn("a", func(p *Proc) { r.UseP(p, 20); aDone = p.Now() })
	e.Spawn("b", func(p *Proc) { r.UseP(p, 5); bDone = p.Now() })
	e.Run()
	if aDone != 20 || bDone != 25 {
		t.Fatalf("aDone=%v bDone=%v", aDone, bDone)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewResource(NewEngine(), "x").Release()
}
