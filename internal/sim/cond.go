package sim

// Cond is a simulated condition variable. Procs wait on it; components (or
// other Procs) wake them. Waiters are resumed in FIFO order, each as its own
// engine event at the current time, so wakeup order is deterministic.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait blocks p until a Signal or Broadcast resumes it. As with sync.Cond,
// callers should re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	c.eng.blocked++
	p.block()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.blocked--
	c.eng.Schedule(0, p.run)
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Waiting returns the number of blocked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Gate is a level-triggered condition: Procs wait until it is opened; once
// open, waits return immediately. Useful for one-shot completions visible to
// multiple observers.
type Gate struct {
	cond *Cond
	open bool
	at   Time // time the gate opened
}

// NewGate returns a closed gate.
func NewGate(e *Engine) *Gate { return &Gate{cond: NewCond(e)} }

// Close re-arms an open gate so future Waits block again (Gates are
// reusable level-triggered signals). Closing a closed gate is a no-op.
func (g *Gate) Close() { g.open = false }

// Open opens the gate and wakes all waiters. Opening an open gate is a no-op.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.at = g.cond.eng.now
	g.cond.Broadcast()
}

// IsOpen reports whether the gate has opened.
func (g *Gate) IsOpen() bool { return g.open }

// OpenedAt returns the time the gate opened (zero if still closed).
func (g *Gate) OpenedAt() Time { return g.at }

// Wait blocks p until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// Queue is an unbounded FIFO of items with blocking receive, for
// producer/consumer coupling between components and Procs.
type Queue[T any] struct {
	cond  *Cond
	items []T

	observed bool
	obsNode  int
	obsComp  string
	obsName  string
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{cond: NewCond(e)} }

// Observe samples the queue depth onto the observability track
// (node, component) under name whenever the depth changes.
func (q *Queue[T]) Observe(node int, component, name string) {
	q.observed = true
	q.obsNode = node
	q.obsComp = component
	q.obsName = name
}

func (q *Queue[T]) sample() {
	if q.observed {
		q.cond.eng.Sample(q.obsNode, q.obsComp, q.obsName, int64(len(q.items)))
	}
}

// Push appends an item and wakes one waiter.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.sample()
	q.cond.Signal()
}

// Pop blocks p until an item is available, then removes and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.cond.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.sample()
	return v
}

// TryPop removes and returns an item without blocking; ok is false when the
// queue is empty.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.sample()
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
