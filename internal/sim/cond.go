package sim

// Cond is a simulated condition variable. Procs wait on it; components (or
// other Procs) wake them. Waiters are resumed in FIFO order, each as its own
// engine event at the current time, so wakeup order is deterministic.
type Cond struct {
	eng     *Engine
	name    string // optional label for stall diagnostics (see SetName)
	isQueue bool   // belongs to a Queue: waits profile as BlockQueue
	waiters []*condWaiter
}

// condWaiter tracks one blocked Proc plus the signal/timeout race state:
// whichever of Signal and the timeout event fires first resumes the Proc and
// marks the waiter so the loser becomes a no-op. Waiter records are recycled
// through the engine's free list (steady-state blocking allocates nothing);
// gen stamps each reuse so a stale timeout event holding an old pointer
// recognizes itself and bows out.
type condWaiter struct {
	p        *Proc
	since    Time // when the wait began, for stall diagnostics
	signaled bool
	timedOut bool
	timed    bool   // a timeout event may still reference this record
	gen      uint64 // recycle generation, bumped on every free
}

// getWaiter takes a waiter record from the free list (or allocates one).
//
//voyager:noalloc
func (e *Engine) getWaiter(p *Proc) *condWaiter {
	if n := len(e.waiterFree); n > 0 {
		w := e.waiterFree[n-1]
		e.waiterFree = e.waiterFree[:n-1]
		w.p = p
		w.since = e.now
		w.signaled, w.timedOut, w.timed = false, false, false
		return w
	}
	return &condWaiter{p: p, since: e.now} //voyager:alloc-ok(pool warm-up; recycled thereafter)
}

// putWaiter returns a waiter record to the free list, invalidating any
// timeout event still holding it.
//
//voyager:noalloc
func (e *Engine) putWaiter(w *condWaiter) {
	w.gen++
	w.p = nil
	e.waiterFree = append(e.waiterFree, w) //voyager:alloc-ok(amortized: free-list backing array is retained)
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond {
	c := &Cond{eng: e}
	e.conds = append(e.conds, c)
	return c
}

// SetName labels the condition for stall diagnostics: a Proc found blocked
// here is reported as waiting at this name. Unnamed conditions report as
// "cond".
func (c *Cond) SetName(name string) { c.name = name }

// Wait blocks p until a Signal or Broadcast resumes it. As with sync.Cond,
// callers should re-check their predicate in a loop.
//
//voyager:noalloc
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, c.eng.getWaiter(p)) //voyager:alloc-ok(amortized: waiter list backing array is retained)
	c.eng.blocked++
	c.profBlock(p)
	p.block()
}

// profBlock reports the imminent wait to the attached profiler (no-op
// without one): queue-backed conditions bucket as queued-wait, plain ones as
// blocked-on-cond, each labeled with the condition's diagnostic name.
//
//voyager:noalloc
func (c *Cond) profBlock(p *Proc) {
	pr := c.eng.prof
	if pr == nil {
		return
	}
	kind := BlockCond
	if c.isQueue {
		kind = BlockQueue
	}
	pr.ProcBlock(c.eng.now, p, kind, c.name)
}

// WaitTimeout blocks p until a Signal/Broadcast resumes it or d elapses,
// whichever is first; it reports true for a signal and false for a timeout.
// A negative d means no deadline (identical to Wait, always true).
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	if d < 0 {
		c.Wait(p)
		return true
	}
	w := c.eng.getWaiter(p)
	w.timed = true
	gen := w.gen
	c.waiters = append(c.waiters, w)
	c.eng.blocked++
	c.eng.Schedule(d, func() {
		if w.gen != gen || w.signaled || w.timedOut {
			return // recycled or lost the race; Signal already resumed the Proc
		}
		w.timedOut = true
		for i, cw := range c.waiters {
			if cw == w {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
		c.eng.blocked--
		c.eng.Schedule(0, w.p.runFn)
	})
	c.profBlock(p)
	p.block()
	timedOut := w.timedOut
	c.eng.putWaiter(w)
	return !timedOut
}

// Signal wakes the longest-waiting process, if any.
//
//voyager:noalloc
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	// Pop by copy-down, not reslice: sliding the head would walk the backing
	// array forward and force a reallocation on a later append. Waiter lists
	// are short (usually one entry), so the copy is cheaper than the alloc.
	n := len(c.waiters)
	copy(c.waiters, c.waiters[1:])
	c.waiters[n-1] = nil
	c.waiters = c.waiters[:n-1]
	w.signaled = true
	c.eng.blocked--
	c.eng.Schedule(0, w.p.runFn)
	if !w.timed {
		// Timed waiters are freed by WaitTimeout itself, after it has read
		// the race outcome; untimed ones have no other referent.
		c.eng.putWaiter(w)
	}
}

// Broadcast wakes all waiting processes in FIFO order.
//
//voyager:noalloc
func (c *Cond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Waiting returns the number of blocked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Gate is a level-triggered condition: Procs wait until it is opened; once
// open, waits return immediately. Useful for one-shot completions visible to
// multiple observers.
type Gate struct {
	cond *Cond
	open bool
	at   Time // time the gate opened
}

// NewGate returns a closed gate.
func NewGate(e *Engine) *Gate { return &Gate{cond: NewCond(e)} }

// Close re-arms an open gate so future Waits block again (Gates are
// reusable level-triggered signals). Closing a closed gate is a no-op.
func (g *Gate) Close() { g.open = false }

// Open opens the gate and wakes all waiters. Opening an open gate is a no-op.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.at = g.cond.eng.now
	g.cond.Broadcast()
}

// IsOpen reports whether the gate has opened.
func (g *Gate) IsOpen() bool { return g.open }

// OpenedAt returns the time the gate opened (zero if still closed).
func (g *Gate) OpenedAt() Time { return g.at }

// Wait blocks p until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// WaitTimeout blocks p until the gate opens or d elapses; it reports whether
// the gate is open. A negative d means no deadline.
func (g *Gate) WaitTimeout(p *Proc, d Time) bool {
	if g.open {
		return true
	}
	if d < 0 {
		g.Wait(p)
		return true
	}
	deadline := g.cond.eng.now + d
	for !g.open {
		left := deadline - g.cond.eng.now
		if left <= 0 || !g.cond.WaitTimeout(p, left) {
			return g.open
		}
	}
	return true
}

// Queue is an unbounded FIFO of items with blocking receive, for
// producer/consumer coupling between components and Procs. Items live in a
// ring buffer: steady-state push/pop traffic reuses the backing array
// instead of sliding a slice window along a perpetually reallocated one.
type Queue[T any] struct {
	cond *Cond
	buf  []T // ring storage; len(buf) is the capacity
	head int // index of the oldest item
	n    int // number of queued items

	observed bool
	obsNode  int
	obsComp  string
	obsName  string
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] {
	q := &Queue[T]{cond: NewCond(e)}
	q.cond.isQueue = true
	return q
}

// SetName labels the queue's condition for stall diagnostics and profiler
// wait leaves without registering a depth series (see Observe for both).
func (q *Queue[T]) SetName(name string) { q.cond.SetName(name) }

// Observe samples the queue depth onto the observability track
// (node, component) under name whenever the depth changes. The queue's
// condition inherits the label, so stall diagnostics name Procs blocked in
// Pop by the queue they starve on.
func (q *Queue[T]) Observe(node int, component, name string) {
	q.observed = true
	q.obsNode = node
	q.obsComp = component
	q.obsName = name
	q.cond.SetName(component + "/" + name)
}

//voyager:noalloc
func (q *Queue[T]) sample() {
	if q.observed {
		q.cond.eng.Sample(q.obsNode, q.obsComp, q.obsName, int64(q.n))
	}
}

// grow doubles the ring (linearizing it from head) when it is full.
//
//voyager:noalloc grows only while warming up; steady state reuses the ring
func (q *Queue[T]) grow() {
	size := 2 * len(q.buf)
	if size < 8 {
		size = 8
	}
	buf := make([]T, size) //voyager:alloc-ok(amortized ring doubling; steady state never grows)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// take removes and returns the oldest item; the caller guarantees q.n > 0.
//
//voyager:noalloc
func (q *Queue[T]) take() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the slot's referents for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.sample()
	return v
}

// Push appends an item and wakes one waiter.
//
//voyager:noalloc
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.sample()
	q.cond.Signal()
}

// Pop blocks p until an item is available, then removes and returns it.
//
//voyager:noalloc
func (q *Queue[T]) Pop(p *Proc) T {
	for q.n == 0 {
		q.cond.Wait(p)
	}
	return q.take()
}

// PopTimeout is Pop with a deadline: ok is false if d elapsed with the queue
// still empty. A negative d means no deadline.
func (q *Queue[T]) PopTimeout(p *Proc, d Time) (v T, ok bool) {
	if d < 0 {
		return q.Pop(p), true
	}
	deadline := q.cond.eng.now + d
	for q.n == 0 {
		left := deadline - q.cond.eng.now
		if left <= 0 || !q.cond.WaitTimeout(p, left) {
			if q.n > 0 {
				break // an item landed in the same instant the timer fired
			}
			return v, false
		}
	}
	return q.take(), true
}

// TryPop removes and returns an item without blocking; ok is false when the
// queue is empty.
//
//voyager:noalloc
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	return q.take(), true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.n }
