package sim

// Cond is a simulated condition variable. Procs wait on it; components (or
// other Procs) wake them. Waiters are resumed in FIFO order, each as its own
// engine event at the current time, so wakeup order is deterministic.
type Cond struct {
	eng     *Engine
	waiters []*condWaiter
}

// condWaiter tracks one blocked Proc plus the signal/timeout race state:
// whichever of Signal and the timeout event fires first resumes the Proc and
// marks the waiter so the loser becomes a no-op.
type condWaiter struct {
	p        *Proc
	signaled bool
	timedOut bool
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait blocks p until a Signal or Broadcast resumes it. As with sync.Cond,
// callers should re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, &condWaiter{p: p})
	c.eng.blocked++
	p.block()
}

// WaitTimeout blocks p until a Signal/Broadcast resumes it or d elapses,
// whichever is first; it reports true for a signal and false for a timeout.
// A negative d means no deadline (identical to Wait, always true).
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	if d < 0 {
		c.Wait(p)
		return true
	}
	w := &condWaiter{p: p}
	c.waiters = append(c.waiters, w)
	c.eng.blocked++
	c.eng.Schedule(d, func() {
		if w.signaled || w.timedOut {
			return // lost the race; Signal already resumed the Proc
		}
		w.timedOut = true
		for i, cw := range c.waiters {
			if cw == w {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
		c.eng.blocked--
		c.eng.Schedule(0, w.p.run)
	})
	p.block()
	return !w.timedOut
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.signaled = true
	c.eng.blocked--
	c.eng.Schedule(0, w.p.run)
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Waiting returns the number of blocked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Gate is a level-triggered condition: Procs wait until it is opened; once
// open, waits return immediately. Useful for one-shot completions visible to
// multiple observers.
type Gate struct {
	cond *Cond
	open bool
	at   Time // time the gate opened
}

// NewGate returns a closed gate.
func NewGate(e *Engine) *Gate { return &Gate{cond: NewCond(e)} }

// Close re-arms an open gate so future Waits block again (Gates are
// reusable level-triggered signals). Closing a closed gate is a no-op.
func (g *Gate) Close() { g.open = false }

// Open opens the gate and wakes all waiters. Opening an open gate is a no-op.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.at = g.cond.eng.now
	g.cond.Broadcast()
}

// IsOpen reports whether the gate has opened.
func (g *Gate) IsOpen() bool { return g.open }

// OpenedAt returns the time the gate opened (zero if still closed).
func (g *Gate) OpenedAt() Time { return g.at }

// Wait blocks p until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// WaitTimeout blocks p until the gate opens or d elapses; it reports whether
// the gate is open. A negative d means no deadline.
func (g *Gate) WaitTimeout(p *Proc, d Time) bool {
	if g.open {
		return true
	}
	if d < 0 {
		g.Wait(p)
		return true
	}
	deadline := g.cond.eng.now + d
	for !g.open {
		left := deadline - g.cond.eng.now
		if left <= 0 || !g.cond.WaitTimeout(p, left) {
			return g.open
		}
	}
	return true
}

// Queue is an unbounded FIFO of items with blocking receive, for
// producer/consumer coupling between components and Procs.
type Queue[T any] struct {
	cond  *Cond
	items []T

	observed bool
	obsNode  int
	obsComp  string
	obsName  string
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{cond: NewCond(e)} }

// Observe samples the queue depth onto the observability track
// (node, component) under name whenever the depth changes.
func (q *Queue[T]) Observe(node int, component, name string) {
	q.observed = true
	q.obsNode = node
	q.obsComp = component
	q.obsName = name
}

func (q *Queue[T]) sample() {
	if q.observed {
		q.cond.eng.Sample(q.obsNode, q.obsComp, q.obsName, int64(len(q.items)))
	}
}

// Push appends an item and wakes one waiter.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.sample()
	q.cond.Signal()
}

// Pop blocks p until an item is available, then removes and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.cond.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.sample()
	return v
}

// PopTimeout is Pop with a deadline: ok is false if d elapsed with the queue
// still empty. A negative d means no deadline.
func (q *Queue[T]) PopTimeout(p *Proc, d Time) (v T, ok bool) {
	if d < 0 {
		return q.Pop(p), true
	}
	deadline := q.cond.eng.now + d
	for len(q.items) == 0 {
		left := deadline - q.cond.eng.now
		if left <= 0 || !q.cond.WaitTimeout(p, left) {
			if len(q.items) > 0 {
				break // an item landed in the same instant the timer fired
			}
			return v, false
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.sample()
	return v, true
}

// TryPop removes and returns an item without blocking; ok is false when the
// queue is empty.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.sample()
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
