// Package arctic models the MIT Arctic network: a 4-ary fat-tree packet
// switch fabric with 160 MB/s/direction links, 96-byte maximum packets and
// two priority levels (the property StarT-Voyager's deadlock-avoidance
// depends on). Routers use deterministic up/down routing, so delivery
// between a given (source, destination, priority) triple is FIFO.
package arctic

import "startvoyager/internal/sim"

// Priority is a network packet priority lane. Arctic guarantees that High
// traffic is never blocked behind Low traffic, which the NIU uses to keep
// reply/system traffic flowing when request queues back up.
type Priority int

const (
	// High priority: replies and system traffic.
	High Priority = iota
	// Low priority: ordinary requests and data.
	Low
	numPriorities
)

// String returns "high" or "low".
func (p Priority) String() string {
	if p == High {
		return "high"
	}
	return "low"
}

// Wire-format constants for Arctic packets.
const (
	// HeaderBytes is the per-packet header overhead on the wire.
	HeaderBytes = 8
	// MaxPacketBytes is the largest packet Arctic carries.
	MaxPacketBytes = 96
	// MaxPayloadBytes is the largest payload per packet.
	MaxPayloadBytes = MaxPacketBytes - HeaderBytes
)

// Packet is one Arctic network packet. Payload is opaque to the network; the
// NIU layers attach their message representation to it.
type Packet struct {
	Src, Dst int
	Priority Priority
	// Size is the total wire size in bytes including header; it determines
	// serialization time. Must be in (HeaderBytes, MaxPacketBytes].
	Size    int
	Payload interface{}

	// Trace is the payload message's causal trace context; the fabric carries
	// it untouched (sideband, not part of Size) so path analysis can link the
	// network hop to the surrounding NIU stages.
	Trace sim.MsgTag

	injected sim.Time
}

// InjectedAt returns the time the packet entered the fabric (set by the
// fabric on injection).
func (p *Packet) InjectedAt() sim.Time { return p.injected }

// traceFields appends a packet's causal trace attributes ("msg", and
// "attempt" for retransmissions) to an event's field list; untraced packets
// add nothing, keeping fault-free untagged traffic's events unchanged.
func traceFields(fields []sim.Field, t sim.MsgTag) []sim.Field {
	if t.Traced() {
		fields = append(fields, sim.I64("msg", int64(t.ID)))
		if t.Attempt > 1 {
			fields = append(fields, sim.I64("attempt", int64(t.Attempt)))
		}
	}
	return fields
}

// Endpoint receives packets from the fabric. TryDeliver returns false to
// refuse the packet (backpressure): the fabric then stalls that packet's
// priority lane on the final link until the endpoint calls Fabric.Poke.
type Endpoint interface {
	TryDeliver(pkt *Packet) bool
}

// EndpointFunc adapts a function to the Endpoint interface (always accepts).
type EndpointFunc func(pkt *Packet)

// TryDeliver delivers the packet and reports acceptance.
func (f EndpointFunc) TryDeliver(pkt *Packet) bool { f(pkt); return true }

// Fabric is a network connecting NumNodes endpoints.
type Fabric interface {
	NumNodes() int
	// Attach registers the endpoint for a node. Must be called before the
	// first delivery to that node.
	Attach(node int, ep Endpoint)
	// Inject sends a packet from pkt.Src toward pkt.Dst.
	Inject(pkt *Packet)
	// Poke tells the fabric that node's endpoint, having previously refused
	// a delivery, may now accept; the fabric retries stalled packets.
	Poke(node int)
	// InjectReady reports whether node may inject more traffic on the given
	// priority lane (finite fabric buffering); SetReadyHook registers the
	// wake-up call for when room returns on any lane.
	InjectReady(node int, pri Priority) bool
	SetReadyHook(node int, fn func())
}
