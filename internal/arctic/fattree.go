package arctic

import (
	"fmt"

	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Config holds fat-tree timing and shape parameters. The defaults reproduce
// Arctic's published characteristics: 160 MB/s per link per direction
// (16-byte flits at 100 ns) and radix-4 routers.
type Config struct {
	Radix         int      // router radix k (default 4)
	FlitBytes     int      // bytes per flit (default 16)
	FlitTime      sim.Time // serialization time per flit (default 100 ns)
	RouterLatency sim.Time // per-hop routing decision latency (default 50 ns)
	// LaneCapacity bounds each link lane's packet buffer (default 4); full
	// lanes backpressure upstream links hop by hop.
	LaneCapacity int
	// Adaptive selects the least-occupied up-link during ascent instead of
	// the deterministic source-digit choice. Still deterministic as a
	// simulation, but packets of one (src,dst) pair may take different
	// paths and arrive out of order — suitable for network studies only;
	// the NIU protocol layers rely on deterministic routing's FIFO.
	Adaptive bool
}

// DefaultConfig returns the Arctic-like parameter set.
func DefaultConfig() Config {
	return Config{Radix: 4, FlitBytes: 16,
		FlitTime: 100 * sim.Nanosecond, RouterLatency: 50 * sim.Nanosecond}
}

func (c *Config) fillDefaults() {
	if c.Radix == 0 {
		c.Radix = 4
	}
	if c.FlitBytes == 0 {
		c.FlitBytes = 16
	}
	if c.FlitTime == 0 {
		c.FlitTime = 100 * sim.Nanosecond
	}
	if c.RouterLatency == 0 {
		c.RouterLatency = 50 * sim.Nanosecond
	}
	if c.LaneCapacity == 0 {
		c.LaneCapacity = 4
	}
}

// Stats are fabric-wide delivery counters.
type Stats struct {
	Injected  uint64
	Delivered uint64
	Bytes     uint64
	Refusals  uint64 // endpoint backpressure events
	ByPri     [2]uint64
}

// FatTree is a k-ary n-tree fabric (the Arctic topology). Routing is
// deterministic: packets ascend toward the nearest common ancestor level
// using an up-link selected by the source's least-significant digit (so the
// k leaves under a switch spread across its k up links), then descend
// following the destination's digits. Each directed link serializes at the
// configured flit rate and arbitrates two priority lanes, High first.
type FatTree struct {
	eng    *sim.Engine
	cfg    Config
	nodes  int // requested endpoint count
	n      int // levels
	k      int
	width  int // k^(n-1): words per level
	leaves int // k^n

	endpoints  []Endpoint
	inject     []*link
	eject      []*link
	links      []*link // every link, in construction order, for metrics
	readyHooks []func()
	// up[l][w*k+j]: switch(l+1, w) -> switch(l, w with digit l = j)
	// down[l][w*k+i]: switch(l, w) -> switch(l+1, w with digit l = i)
	up, down [][]*link

	stats   Stats
	latHist *stats.Histogram // end-to-end delivery latency (ns)
	faults  *fault.Injector  // nil = fault-free fabric
}

// NewFatTree builds a fabric for numNodes endpoints (rounded up internally
// to a power of the radix).
func NewFatTree(eng *sim.Engine, numNodes int, cfg Config) *FatTree {
	if numNodes < 1 {
		panic("arctic: need at least one node")
	}
	cfg.fillDefaults()
	k := cfg.Radix
	n, leaves := 1, k
	for leaves < numNodes {
		n++
		leaves *= k
	}
	f := &FatTree{
		eng:       eng,
		cfg:       cfg,
		nodes:     numNodes,
		n:         n,
		k:         k,
		width:     leaves / k,
		leaves:    leaves,
		endpoints: make([]Endpoint, numNodes),
		latHist:   stats.NewHistogram(stats.ExpBounds(1000, 2, 12)...),
	}
	f.readyHooks = make([]func(), numNodes)
	f.inject = make([]*link, numNodes)
	f.eject = make([]*link, numNodes)
	// Links carry a compact identity (kind/level/word/port) instead of a
	// formatted name: at 1024 nodes the tree holds >10k links, and eager
	// fmt.Sprintf names dominate construction cost for no benefit until a
	// human-facing surface (metrics, errors) actually asks for one.
	f.links = make([]*link, 0, 2*numNodes+2*(n-1)*f.width*k)
	for p := 0; p < numNodes; p++ {
		f.inject[p] = f.newLink(lkInject, 0, 0, p)
		f.eject[p] = f.newLink(lkEject, 0, 0, p)
		f.links = append(f.links, f.inject[p], f.eject[p])
	}
	f.up = make([][]*link, n-1)
	f.down = make([][]*link, n-1)
	for l := 0; l < n-1; l++ {
		f.up[l] = make([]*link, f.width*k)
		f.down[l] = make([]*link, f.width*k)
		for w := 0; w < f.width; w++ {
			for j := 0; j < k; j++ {
				f.up[l][w*k+j] = f.newLink(lkUp, l, w, j)
				f.down[l][w*k+j] = f.newLink(lkDown, l, w, j)
				f.links = append(f.links, f.up[l][w*k+j], f.down[l][w*k+j])
			}
		}
	}
	return f
}

// NumNodes returns the number of attachable endpoints.
func (f *FatTree) NumNodes() int { return f.nodes }

// Levels returns the number of switch levels in the tree.
func (f *FatTree) Levels() int { return f.n }

// NumLinks returns the number of directed links in the fabric, including
// per-node injection and ejection links.
func (f *FatTree) NumLinks() int { return len(f.links) }

// SetFaults attaches a fault injector; nil restores the fault-free fabric.
func (f *FatTree) SetFaults(in *fault.Injector) { f.faults = in }

// Stats returns a snapshot of fabric counters.
func (f *FatTree) Stats() Stats { return f.stats }

// RegisterMetrics registers the fabric's counters under r.
func (f *FatTree) RegisterMetrics(r *stats.Registry) {
	r.Gauge("injected", func() int64 { return int64(f.stats.Injected) })
	r.Gauge("delivered", func() int64 { return int64(f.stats.Delivered) })
	r.Gauge("bytes", func() int64 { return int64(f.stats.Bytes) })
	r.Gauge("refusals", func() int64 { return int64(f.stats.Refusals) })
	r.Gauge("high_pri", func() int64 { return int64(f.stats.ByPri[High]) })
	r.Gauge("low_pri", func() int64 { return int64(f.stats.ByPri[Low]) })
	r.Histogram("delivery_latency_ns", f.latHist)
	lr := r.Child("link")
	for _, l := range f.links {
		l := l
		lc := lr.Child(l.name())
		lc.Time("busy", func() sim.Time { return l.busyNs })
		lc.Counter("credit_stalls", &l.stallCnt)
		lc.Gauge("queued", func() int64 {
			return int64(len(l.queues[High]) + len(l.queues[Low]))
		})
	}
}

// LevelStalls aggregates the credit-stall telemetry of every link at one
// position in the tree: the injection links, one up or down switch level, or
// the ejection links. It is the per-depth view of the same per-link
// `credit_stalls` counters the metrics registry exports — coarse enough to
// stay readable at 1024 nodes, where the tree holds >10k links.
type LevelStalls struct {
	Level     string // "inject", "up-l3".."up-l0", "dn-l0".."dn-l3", "eject"
	Links     int    // links aggregated into this row
	Stalls    uint64 // stall onsets (packets that found their lane full)
	StalledNs uint64 // total nanoseconds those packets waited for a credit
}

// StallsByLevel groups per-link credit stalls by tree depth, in hop order
// for a maximal route: inject, the up levels from leaf-adjacent to root
// (up-l(n-2) .. up-l0), the down levels from root to leaf (dn-l0 ..
// dn-l(n-2)), eject. Rows are emitted for every level even when zero, so
// backpressure propagating toward the senders reads as a gradient down the
// table (tree saturation: hotspot congestion fills the ejection lane first,
// then marches up the descent levels and across the root into the ascent).
func (f *FatTree) StallsByLevel() []LevelStalls {
	rows := make([]LevelStalls, 0, 2*f.n)
	row := func(level string, match func(*link) bool) {
		r := LevelStalls{Level: level}
		for _, l := range f.links {
			if !match(l) {
				continue
			}
			r.Links++
			r.Stalls += l.stallCnt.Events
			r.StalledNs += l.stallCnt.Amount
		}
		rows = append(rows, r)
	}
	row("inject", func(l *link) bool { return l.kind == lkInject })
	for lvl := f.n - 2; lvl >= 0; lvl-- {
		lvl := lvl
		row(fmt.Sprintf("up-l%d", lvl), func(l *link) bool {
			return l.kind == lkUp && int(l.lvl) == lvl
		})
	}
	for lvl := 0; lvl <= f.n-2; lvl++ {
		lvl := lvl
		row(fmt.Sprintf("dn-l%d", lvl), func(l *link) bool {
			return l.kind == lkDown && int(l.lvl) == lvl
		})
	}
	row("eject", func(l *link) bool { return l.kind == lkEject })
	return rows
}

// InFlight counts the packets currently buffered inside the fabric: lane
// queues, serialized packets blocked on downstream admission, and credit
// waiters, across every link. Once the event queue has drained (no
// serialization or flight callbacks outstanding) this is exactly the number
// of injected-but-undelivered packets, which is what the chaos harness's
// credit-conservation oracle balances against the injector's drop counters.
func (f *FatTree) InFlight() int {
	n := 0
	for _, l := range f.links {
		for pr := Priority(0); pr < numPriorities; pr++ {
			n += len(l.queues[pr]) + len(l.waiters[pr])
			if l.blocked[pr] != nil {
				n++
			}
		}
	}
	return n
}

// CheckLanes verifies the finite-buffer invariant: no link lane ever holds
// more than the configured LaneCapacity packets. A violation means the
// credit protocol admitted past a full buffer — exactly the corruption the
// chaos harness exists to catch.
func (f *FatTree) CheckLanes() error {
	for _, l := range f.links {
		for pr := Priority(0); pr < numPriorities; pr++ {
			if got := len(l.queues[pr]); got > f.cfg.LaneCapacity {
				return fmt.Errorf("arctic: link %s lane %d holds %d packets (capacity %d)",
					l.name(), pr, got, f.cfg.LaneCapacity)
			}
		}
	}
	return nil
}

// delivered updates delivery counters and emits the per-packet trace event;
// both acceptance paths (first try and post-Poke retry) funnel through it.
func (f *FatTree) delivered(pkt *Packet) {
	f.stats.Delivered++
	f.stats.Bytes += uint64(pkt.Size)
	lat := f.eng.Now() - pkt.injected
	f.latHist.ObserveTime(lat)
	if f.eng.Observed() {
		f.eng.Instant(pkt.Dst, "net", "deliver",
			traceFields([]sim.Field{
				sim.Int("src", pkt.Src), sim.I64("lat_ns", int64(lat)),
				sim.Int("size", pkt.Size)}, pkt.Trace)...)
	}
}

// dropDead traces a packet killed at the delivery boundary (dead receiver).
func (f *FatTree) dropDead(pkt *Packet) {
	if f.eng.Observed() && pkt.Trace.Traced() {
		f.eng.Instant(pkt.Dst, "net", "msg-drop",
			traceFields([]sim.Field{sim.Str("why", "dead")}, pkt.Trace)...)
	}
}

// Attach registers the endpoint for node.
func (f *FatTree) Attach(node int, ep Endpoint) { f.endpoints[node] = ep }

// digit returns base-k digit at position pos (0 = most significant of n
// digits) of leaf address p.
func (f *FatTree) digit(p, pos int) int {
	div := 1
	for i := 0; i < f.n-1-pos; i++ {
		div *= f.k
	}
	return (p / div) % f.k
}

// setWordDigit returns word w with its digit at position pos (0 = most
// significant of n-1 digits) replaced by v.
func (f *FatTree) setWordDigit(w, pos, v int) int {
	div := 1
	for i := 0; i < f.n-2-pos; i++ {
		div *= f.k
	}
	old := (w / div) % f.k
	return w + (v-old)*div
}

// path computes the deterministic link sequence from src to dst.
func (f *FatTree) path(src, dst int) []*link {
	links := []*link{f.inject[src]}
	lca := f.lcaLevel(src, dst)
	w := src / f.k // word of the leaf-adjacent switch
	j := f.digit(src, f.n-1)
	for l := f.n - 2; l >= lca; l-- { // ascend
		if f.cfg.Adaptive {
			j = f.bestUp(l, w)
		}
		links = append(links, f.up[l][w*f.k+j])
		w = f.setWordDigit(w, l, j)
	}
	for l := lca; l <= f.n-2; l++ { // descend
		i := f.digit(dst, l)
		links = append(links, f.down[l][w*f.k+i])
		w = f.setWordDigit(w, l, i)
	}
	return append(links, f.eject[dst])
}

// bestUp picks the up-link out of switch (l+1, w) with the least queued
// work (ties broken by port index, keeping the simulation deterministic).
func (f *FatTree) bestUp(l, w int) int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for j := 0; j < f.k; j++ {
		lk := f.up[l][w*f.k+j]
		load := len(lk.queues[High]) + len(lk.queues[Low])
		if lk.busy {
			load++
		}
		if load < bestLoad {
			best, bestLoad = j, load
		}
	}
	return best
}

// HopCount returns the number of links a packet from src to dst traverses
// (including injection and ejection links).
func (f *FatTree) HopCount(src, dst int) int { return len(f.path(src, dst)) }

// Inject sends pkt from pkt.Src toward pkt.Dst.
func (f *FatTree) Inject(pkt *Packet) {
	if pkt.Size <= HeaderBytes || pkt.Size > MaxPacketBytes {
		panic(fmt.Sprintf("arctic: bad packet size %d", pkt.Size))
	}
	if pkt.Dst < 0 || pkt.Dst >= f.nodes || pkt.Src < 0 || pkt.Src >= f.nodes {
		panic(fmt.Sprintf("arctic: bad src/dst %d->%d", pkt.Src, pkt.Dst))
	}
	pkt.injected = f.eng.Now()
	f.stats.Injected++
	f.stats.ByPri[pkt.Priority]++
	if f.eng.Observed() {
		f.eng.Instant(pkt.Src, "net", "inject",
			traceFields([]sim.Field{
				sim.Int("dst", pkt.Dst), sim.Int("size", pkt.Size),
				sim.Str("pri", pkt.Priority.String())}, pkt.Trace)...)
	}
	if f.faults != nil {
		launch, delay := judgeFault(f.faults, pkt, func(dup *Packet) {
			f.stats.Injected++
			f.stats.ByPri[dup.Priority]++
		})
		if len(launch) == 0 && f.eng.Observed() && pkt.Trace.Traced() {
			f.eng.Instant(pkt.Src, "net", "msg-drop",
				traceFields([]sim.Field{sim.Str("why", "fault")}, pkt.Trace)...)
		}
		for _, lp := range launch {
			lp := lp
			if delay > 0 {
				f.eng.Schedule(delay, func() { f.launch(lp) })
			} else {
				f.launch(lp)
			}
		}
		return
	}
	f.launch(pkt)
}

// launch enters a (fault-approved) packet into the routed fabric.
func (f *FatTree) launch(pkt *Packet) {
	if f.cfg.Adaptive {
		lca := f.lcaLevel(pkt.Src, pkt.Dst)
		entry := &linkEntry{pkt: pkt}
		entry.advance = func(from *link) {
			f.adaptiveStep(pkt, f.n-1, pkt.Src/f.k, lca, lca < f.n-1, from)
		}
		f.inject[pkt.Src].enqueueOrWait(entry, nil)
		return
	}
	route := f.path(pkt.Src, pkt.Dst)
	f.walk(pkt, route, 0, nil)
}

// InjectReady reports whether node's injection link can take more traffic
// on the given priority lane (the NIU throttles its transmit formatting on
// this signal, independently per lane so High traffic bypasses a wedged
// Low lane).
func (f *FatTree) InjectReady(node int, pri Priority) bool {
	return f.inject[node].injectReady(pri)
}

// SetReadyHook registers fn to run whenever node's injection link regains
// room after being full.
func (f *FatTree) SetReadyHook(node int, fn func()) { f.readyHooks[node] = fn }

// lcaLevel returns the nearest-common-ancestor switch level of two leaves.
func (f *FatTree) lcaLevel(src, dst int) int {
	for pos := 0; pos < f.n-1; pos++ {
		if f.digit(src, pos) != f.digit(dst, pos) {
			return pos
		}
	}
	return f.n - 1
}

// adaptiveStep routes one hop at a time, choosing the least-loaded up link
// at each ascent — the decision is made when the packet actually reaches
// the switch, not at injection.
func (f *FatTree) adaptiveStep(pkt *Packet, cl, w, lca int, ascending bool, from *link) {
	rdy := f.eng.Now() + f.cfg.RouterLatency
	switch {
	case ascending && cl > lca:
		j := f.bestUp(cl-1, w)
		nw := f.setWordDigit(w, cl-1, j)
		nl := cl - 1
		entry := &linkEntry{pkt: pkt, readyAt: rdy}
		entry.advance = func(from *link) { f.adaptiveStep(pkt, nl, nw, lca, nl > lca, from) }
		f.up[cl-1][w*f.k+j].enqueueOrWait(entry, from)
	case cl < f.n-1:
		i := f.digit(pkt.Dst, cl)
		nw := f.setWordDigit(w, cl, i)
		nl := cl + 1
		entry := &linkEntry{pkt: pkt, readyAt: rdy}
		entry.advance = func(from *link) { f.adaptiveStep(pkt, nl, nw, lca, false, from) }
		f.down[cl][w*f.k+i].enqueueOrWait(entry, from)
	default:
		f.eject[pkt.Dst].enqueueOrWait(&linkEntry{pkt: pkt, readyAt: rdy}, from)
	}
}

// walk enqueues pkt on route[hop] and continues the traversal as each hop
// admits it.
func (f *FatTree) walk(pkt *Packet, route []*link, hop int, from *link) {
	entry := &linkEntry{pkt: pkt}
	if hop > 0 {
		entry.readyAt = f.eng.Now() + f.cfg.RouterLatency
	}
	if hop+1 < len(route) {
		entry.advance = func(from *link) { f.walk(pkt, route, hop+1, from) }
	}
	route[hop].enqueueOrWait(entry, from)
}

// Poke retries deliveries previously refused by node's endpoint.
func (f *FatTree) Poke(node int) { f.eject[node].poke() }

// serTime returns link serialization time for a packet of size bytes,
// rounded up to whole flits.
func (f *FatTree) serTime(size int) sim.Time {
	flits := (size + f.cfg.FlitBytes - 1) / f.cfg.FlitBytes
	return sim.Time(flits) * f.cfg.FlitTime
}

// link is one directed channel with two priority lanes, a serializer, and
// finite buffering: each lane admits at most the configured LaneCapacity
// packets; upstream links hold their lane blocked until downstream admits
// their packet, so endpoint backpressure propagates hop by hop toward the
// sender (tree saturation) — the behaviour behind the paper's warning that
// the Hold policy "can lead to deadlocking the network".
type link struct {
	f *FatTree
	// Compact identity: kind plus either the owning node (inject/eject) or
	// the (level, word, port) coordinate (up/down). The human-readable name
	// is derived on demand by name().
	kind   uint8
	lvl    int16
	port   int16
	word   int32
	node   int32 // owning node for inject/eject links
	queues [numPriorities][]*linkEntry
	// blocked holds a serialized packet awaiting downstream admission (or
	// endpoint acceptance); its lane cannot serialize further packets.
	blocked [numPriorities]*linkEntry
	// waiters are upstream packets waiting for a lane slot here.
	waiters [numPriorities][]*creditWaiter
	busy    bool

	// Per-link telemetry: wire occupancy, and credit stalls — packets that
	// found their lane full and had to wait for a slot. stallCnt.Events
	// counts stall onsets (the window the backpressure bit), stallCnt.Amount
	// accumulates the nanoseconds those packets spent waiting (credited at
	// admission). The windowed sampler turns these into the per-link
	// per-window utilization and credit-stall series voyager-stats renders.
	busyNs   sim.Time
	stallCnt stats.Counter
}

type linkEntry struct {
	pkt *Packet
	// advance moves the packet to its next hop (nil on the ejection hop);
	// it receives the link it is leaving so admission can unblock it.
	advance func(from *link)
	// readyAt delays serialization start by the router decision latency
	// without holding the upstream lane (cut-through-style overlap).
	readyAt sim.Time
}

type creditWaiter struct {
	entry *linkEntry
	from  *link    // upstream link to unblock on admission (nil at injection)
	since sim.Time // when the stall began, for stalled-time attribution
}

// Link kinds (see link.kind).
const (
	lkInject = iota
	lkEject
	lkUp
	lkDown
)

func (f *FatTree) newLink(kind, lvl, word, portOrNode int) *link {
	l := &link{f: f, kind: uint8(kind), lvl: int16(lvl), word: int32(word)}
	if kind == lkInject || kind == lkEject {
		l.node = int32(portOrNode)
	} else {
		l.port = int16(portOrNode)
	}
	return l
}

// name renders the link's registry/error name from its compact identity.
func (l *link) name() string {
	switch l.kind {
	case lkInject:
		return fmt.Sprintf("inj%d", l.node)
	case lkEject:
		return fmt.Sprintf("ej%d", l.node)
	case lkUp:
		return fmt.Sprintf("up-l%d-w%d-j%d", l.lvl, l.word, l.port)
	default:
		return fmt.Sprintf("dn-l%d-w%d-i%d", l.lvl, l.word, l.port)
	}
}

// enqueueOrWait admits the packet if the lane has room, otherwise registers
// it as a credit waiter; from (if non-nil) stays blocked until admission.
func (l *link) enqueueOrWait(e *linkEntry, from *link) {
	pr := e.pkt.Priority
	if len(l.queues[pr]) < l.f.cfg.LaneCapacity {
		l.queues[pr] = append(l.queues[pr], e)
		if from != nil {
			from.unblock(pr)
		}
		l.maybeReady()
		l.kick()
		return
	}
	l.stallCnt.Events++
	l.waiters[pr] = append(l.waiters[pr], &creditWaiter{entry: e, from: from, since: l.f.eng.Now()})
}

// unblock clears the lane's downstream-wait state and restarts the
// serializer.
func (l *link) unblock(pr Priority) {
	l.blocked[pr] = nil
	l.kick()
}

// kick starts serializing the next eligible packet, High lane first; a lane
// with a packet still awaiting downstream admission (or endpoint
// acceptance) is skipped.
func (l *link) kick() {
	if l.busy {
		return
	}
	for pr := Priority(0); pr < numPriorities; pr++ {
		if l.blocked[pr] != nil || len(l.queues[pr]) == 0 {
			continue
		}
		entry := l.queues[pr][0]
		if entry.readyAt > l.f.eng.Now() {
			// The head is still in the router pipeline; try again when it
			// emerges (the other lane may proceed meanwhile).
			l.f.eng.At(entry.readyAt, l.kick)
			continue
		}
		l.queues[pr] = l.queues[pr][1:]
		l.admitWaiter(pr)
		l.busy = true
		l.busyNs += l.f.serTime(entry.pkt.Size)
		l.f.eng.Schedule(l.f.serTime(entry.pkt.Size), func() {
			l.busy = false
			l.afterSer(entry)
			l.kick()
		})
		return
	}
}

// admitWaiter moves one credit waiter into the freed lane slot.
func (l *link) admitWaiter(pr Priority) {
	if len(l.waiters[pr]) == 0 {
		l.maybeReady()
		return
	}
	w := l.waiters[pr][0]
	l.waiters[pr] = l.waiters[pr][1:]
	l.stallCnt.Amount += uint64(l.f.eng.Now() - w.since)
	l.queues[pr] = append(l.queues[pr], w.entry)
	if w.from != nil {
		w.from.unblock(pr)
	}
	l.maybeReady()
}

// afterSer runs when the wire is done with the packet: deliver (ejection)
// or advance toward the next hop, blocking the lane until it is accepted.
func (l *link) afterSer(e *linkEntry) {
	pr := e.pkt.Priority
	if l.kind == lkEject {
		if l.f.faults != nil && l.f.faults.DropOnDelivery(e.pkt.Dst) {
			l.f.dropDead(e.pkt)
			return // dead destination: the packet dies, the lane stays free
		}
		ep := l.f.endpoints[l.node]
		if ep == nil {
			panic("arctic: delivery to unattached node " + l.name())
		}
		if ep.TryDeliver(e.pkt) {
			l.f.delivered(e.pkt)
			return
		}
		l.f.stats.Refusals++
		l.blocked[pr] = e
		return
	}
	l.blocked[pr] = e
	e.advance(l)
}

// poke retries endpoint delivery of stalled packets (ejection links).
func (l *link) poke() {
	progressed := false
	for pr := Priority(0); pr < numPriorities; pr++ {
		e := l.blocked[pr]
		if e == nil {
			continue
		}
		if l.f.faults != nil && l.f.faults.DropOnDelivery(e.pkt.Dst) {
			l.blocked[pr] = nil
			l.f.dropDead(e.pkt)
			progressed = true
			continue
		}
		if l.f.endpoints[l.node].TryDeliver(e.pkt) {
			l.blocked[pr] = nil
			l.f.delivered(e.pkt)
			progressed = true
		} else {
			l.f.stats.Refusals++
		}
	}
	if progressed {
		l.kick()
	}
}

// maybeReady fires the node's injection-ready hook when an injection link
// regains room (the NIU-side flow control signal).
func (l *link) maybeReady() {
	if l.kind != lkInject {
		return
	}
	if hook := l.f.readyHooks[l.node]; hook != nil &&
		(l.injectReady(High) || l.injectReady(Low)) {
		hook()
	}
}

// injectReady reports whether the lane can take another packet.
func (l *link) injectReady(pr Priority) bool {
	return len(l.queues[pr]) < l.f.cfg.LaneCapacity && len(l.waiters[pr]) == 0
}
