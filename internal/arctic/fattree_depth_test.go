package arctic

import (
	"fmt"
	"testing"

	"startvoyager/internal/sim"
)

// Depth invariants for large trees. A 64-node radix-4 tree has 3 switch
// levels, 256 nodes 4, and 1024 nodes 5 — deep enough that routing,
// conservation, and construction-order bugs that are invisible on the
// 4-node machines show up.

var depthTestSizes = []int{64, 256, 1024}

// TestRouteLengthAtDepth: the deterministic route from src to dst holds
// exactly 2*(levels-1-lcaLevel) switch links plus the injection and ejection
// links — ascent and descent are symmetric around the nearest common
// ancestor.
func TestRouteLengthAtDepth(t *testing.T) {
	for _, n := range depthTestSizes {
		eng := sim.NewEngine()
		f := NewFatTree(eng, n, DefaultConfig())
		// A deterministic sample of pairs covering every LCA level: node 0
		// against powers of the radix, plus stride-walked pairs.
		var pairs [][2]int
		for d := 1; d < n; d *= 2 {
			pairs = append(pairs, [2]int{0, d}, [2]int{d, 0}, [2]int{n - 1, n - 1 - d})
		}
		for s := 0; s < n; s += n/16 + 1 {
			pairs = append(pairs, [2]int{s, (s*7 + 3) % n})
		}
		for _, pr := range pairs {
			src, dst := pr[0], pr[1]
			if src == dst {
				continue
			}
			lca := f.lcaLevel(src, dst)
			want := 2*(f.n-1-lca) + 2
			if got := f.HopCount(src, dst); got != want {
				t.Errorf("n=%d: HopCount(%d,%d)=%d, want %d (lca level %d of %d)",
					n, src, dst, got, want, lca, f.n)
			}
		}
	}
}

// TestPacketConservationAtDepth: every injected packet is delivered once the
// event queue drains, nothing is buffered in the fabric afterwards, and no
// lane ever exceeded its credit capacity.
func TestPacketConservationAtDepth(t *testing.T) {
	for _, n := range depthTestSizes {
		eng := sim.NewEngine()
		f := NewFatTree(eng, n, DefaultConfig())
		got := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			f.Attach(i, EndpointFunc(func(*Packet) { got[i]++ }))
		}
		// Mixed pattern: a hotspot onto node 0 plus transpose-ish pairs, both
		// priorities, staggered injection times.
		injected := 0
		for src := 0; src < n; src += 3 {
			src := src
			dst := (src*5 + n/2) % n
			if dst == src {
				dst = (dst + 1) % n
			}
			for k := 0; k < 4; k++ {
				k := k
				pri := Low
				if k%2 == 1 {
					pri = High
				}
				d := dst
				if k == 3 {
					d = 0 // hotspot component
				}
				if d == src {
					d = (d + 1) % n
				}
				dd := d
				eng.Schedule(sim.Time(k)*100*sim.Nanosecond, func() {
					f.Inject(&Packet{Src: src, Dst: dd, Priority: pri, Size: 96})
				})
				injected++
			}
		}
		eng.Run()
		st := f.Stats()
		if st.Injected != uint64(injected) || st.Delivered != uint64(injected) {
			t.Errorf("n=%d: injected=%d delivered=%d, want both %d", n, st.Injected, st.Delivered, injected)
		}
		total := 0
		for _, g := range got {
			total += g
		}
		if total != injected {
			t.Errorf("n=%d: endpoints saw %d packets, want %d", n, total, injected)
		}
		if inflight := f.InFlight(); inflight != 0 {
			t.Errorf("n=%d: %d packets still buffered after drain", n, inflight)
		}
		if err := f.CheckLanes(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

// TestDeterministicConstructionAtDepth: two identically configured trees
// enumerate exactly the same links in the same order — the property the
// metrics registry, heatmaps, and golden artifacts rely on.
func TestDeterministicConstructionAtDepth(t *testing.T) {
	for _, n := range depthTestSizes {
		a := NewFatTree(sim.NewEngine(), n, DefaultConfig())
		b := NewFatTree(sim.NewEngine(), n, DefaultConfig())
		if a.NumLinks() != b.NumLinks() {
			t.Fatalf("n=%d: link counts differ: %d vs %d", n, a.NumLinks(), b.NumLinks())
		}
		wantLinks := 2*n + 2*(a.n-1)*a.width*a.k
		if a.NumLinks() != wantLinks {
			t.Errorf("n=%d: %d links, want %d", n, a.NumLinks(), wantLinks)
		}
		for i := range a.links {
			if an, bn := a.links[i].name(), b.links[i].name(); an != bn {
				t.Fatalf("n=%d: link %d name %q vs %q", n, i, an, bn)
			}
		}
	}
}

// TestStallsByLevel: the per-level aggregation partitions the per-link
// counters exactly (sums match), covers every link once, emits rows in hop
// order, and under an all-to-one hotspot records stalls on several distinct
// levels — backpressure reaching beyond the hotspot's own ejection link is
// what "tree saturation" means.
func TestStallsByLevel(t *testing.T) {
	for _, n := range []int{64, 256} {
		eng := sim.NewEngine()
		f := NewFatTree(eng, n, DefaultConfig())
		for i := 0; i < n; i++ {
			f.Attach(i, EndpointFunc(func(*Packet) {}))
		}
		for src := 1; src < n; src++ {
			src := src
			for k := 0; k < 8; k++ {
				eng.Schedule(0, func() {
					f.Inject(&Packet{Src: src, Dst: 0, Priority: Low, Size: 96})
				})
			}
		}
		eng.Run()

		rows := f.StallsByLevel()
		wantRows := 2 * f.n
		if len(rows) != wantRows {
			t.Fatalf("n=%d: %d rows, want %d", n, len(rows), wantRows)
		}
		wantOrder := []string{"inject"}
		for l := f.n - 2; l >= 0; l-- {
			wantOrder = append(wantOrder, fmt.Sprintf("up-l%d", l))
		}
		for l := 0; l <= f.n-2; l++ {
			wantOrder = append(wantOrder, fmt.Sprintf("dn-l%d", l))
		}
		wantOrder = append(wantOrder, "eject")
		var rowLinks int
		var rowStalls, rowNs uint64
		levelsWithStalls := 0
		for i, r := range rows {
			if r.Level != wantOrder[i] {
				t.Errorf("n=%d: row %d is %q, want %q", n, i, r.Level, wantOrder[i])
			}
			rowLinks += r.Links
			rowStalls += r.Stalls
			rowNs += r.StalledNs
			if r.Stalls > 0 {
				levelsWithStalls++
			}
		}
		if rowLinks != f.NumLinks() {
			t.Errorf("n=%d: rows cover %d links, fabric has %d", n, rowLinks, f.NumLinks())
		}
		var linkStalls, linkNs uint64
		for _, l := range f.links {
			linkStalls += l.stallCnt.Events
			linkNs += l.stallCnt.Amount
		}
		if rowStalls != linkStalls || rowNs != linkNs {
			t.Errorf("n=%d: aggregation says %d stalls/%dns, per-link counters say %d/%dns",
				n, rowStalls, rowNs, linkStalls, linkNs)
		}
		if levelsWithStalls < 3 {
			t.Errorf("n=%d: hotspot stalled only %d levels; saturation should span the tree", n, levelsWithStalls)
		}
	}
}
