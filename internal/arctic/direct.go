package arctic

import (
	"fmt"

	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Direct is an idealized fabric: every pair of nodes is connected by a
// dedicated fixed-latency, fixed-bandwidth channel. It exists for unit
// testing higher layers in isolation from fat-tree effects, and as the
// "perfect network" baseline for ablation benchmarks.
type Direct struct {
	eng     *sim.Engine
	latency sim.Time
	flit    sim.Time // per-16B serialization; 0 = infinite bandwidth
	nodes   int

	endpoints []Endpoint
	// chans[src*nodes+dst] serializes per-direction traffic.
	chans   []*directChan
	stats   Stats
	latHist *stats.Histogram // end-to-end delivery latency (ns)
	faults  *fault.Injector  // nil = ideal network
}

type directChan struct {
	d       *Direct
	dst     int
	busy    bool
	queue   []*Packet
	stalled []*Packet // refused deliveries, FIFO, retried on Poke

	// Per-channel telemetry, mirroring the fat-tree's per-link series: wire
	// occupancy and stall onsets (here endpoint refusals rather than credit
	// exhaustion — the ideal fabric has unbounded buffering).
	busyNs   sim.Time
	stallCnt stats.Counter
}

// NewDirect builds an ideal fabric with the given one-way latency. If
// flitTime is nonzero, each (src,dst) direction serializes packets at 16
// bytes per flitTime.
func NewDirect(eng *sim.Engine, numNodes int, latency, flitTime sim.Time) *Direct {
	d := &Direct{
		eng:       eng,
		latency:   latency,
		flit:      flitTime,
		nodes:     numNodes,
		endpoints: make([]Endpoint, numNodes),
		chans:     make([]*directChan, numNodes*numNodes),
		latHist:   stats.NewHistogram(stats.ExpBounds(1000, 2, 12)...),
	}
	for i := range d.chans {
		d.chans[i] = &directChan{d: d, dst: i % numNodes}
	}
	return d
}

// NumNodes returns the endpoint count.
func (d *Direct) NumNodes() int { return d.nodes }

// SetFaults attaches a fault injector; nil restores the ideal network.
func (d *Direct) SetFaults(in *fault.Injector) { d.faults = in }

// Stats returns a snapshot of delivery counters.
func (d *Direct) Stats() Stats { return d.stats }

// RegisterMetrics registers the fabric's counters under r.
func (d *Direct) RegisterMetrics(r *stats.Registry) {
	r.Gauge("injected", func() int64 { return int64(d.stats.Injected) })
	r.Gauge("delivered", func() int64 { return int64(d.stats.Delivered) })
	r.Gauge("bytes", func() int64 { return int64(d.stats.Bytes) })
	r.Gauge("refusals", func() int64 { return int64(d.stats.Refusals) })
	r.Gauge("high_pri", func() int64 { return int64(d.stats.ByPri[High]) })
	r.Gauge("low_pri", func() int64 { return int64(d.stats.ByPri[Low]) })
	r.Histogram("delivery_latency_ns", d.latHist)
	lr := r.Child("link")
	for i, c := range d.chans {
		c := c
		lc := lr.Child(fmt.Sprintf("ch%d-%d", i/d.nodes, i%d.nodes))
		lc.Time("busy", func() sim.Time { return c.busyNs })
		lc.Counter("credit_stalls", &c.stallCnt)
		lc.Gauge("queued", func() int64 {
			return int64(len(c.queue) + len(c.stalled))
		})
	}
}

// InFlight counts packets buffered in the fabric's directional channels
// (queued or stalled on a refusing endpoint). With the event queue drained
// this is exactly injected-minus-delivered-minus-dropped, mirroring
// FatTree.InFlight for the conservation oracle.
func (d *Direct) InFlight() int {
	n := 0
	for _, c := range d.chans {
		n += len(c.queue) + len(c.stalled)
	}
	return n
}

// delivered updates delivery counters and emits the per-packet trace event.
func (d *Direct) delivered(pkt *Packet) {
	d.stats.Delivered++
	d.stats.Bytes += uint64(pkt.Size)
	lat := d.eng.Now() - pkt.injected
	d.latHist.ObserveTime(lat)
	if d.eng.Observed() {
		d.eng.Instant(pkt.Dst, "net", "deliver",
			traceFields([]sim.Field{
				sim.Int("src", pkt.Src), sim.I64("lat_ns", int64(lat)),
				sim.Int("size", pkt.Size)}, pkt.Trace)...)
	}
}

// Attach registers the endpoint for node.
func (d *Direct) Attach(node int, ep Endpoint) { d.endpoints[node] = ep }

// Inject sends pkt after the channel latency.
func (d *Direct) Inject(pkt *Packet) {
	if pkt.Size <= HeaderBytes || pkt.Size > MaxPacketBytes {
		panic(fmt.Sprintf("arctic: bad packet size %d", pkt.Size))
	}
	pkt.injected = d.eng.Now()
	d.stats.Injected++
	d.stats.ByPri[pkt.Priority]++
	if d.eng.Observed() {
		d.eng.Instant(pkt.Src, "net", "inject",
			traceFields([]sim.Field{
				sim.Int("dst", pkt.Dst), sim.Int("size", pkt.Size),
				sim.Str("pri", pkt.Priority.String())}, pkt.Trace)...)
	}
	if d.faults != nil {
		launch, delay := judgeFault(d.faults, pkt, func(dup *Packet) {
			d.stats.Injected++
			d.stats.ByPri[dup.Priority]++
		})
		if len(launch) == 0 && d.eng.Observed() && pkt.Trace.Traced() {
			d.eng.Instant(pkt.Src, "net", "msg-drop",
				traceFields([]sim.Field{sim.Str("why", "fault")}, pkt.Trace)...)
		}
		for _, lp := range launch {
			d.launchAfter(lp, delay)
		}
		return
	}
	d.launchAfter(pkt, 0)
}

// launchAfter enters pkt into its directional channel, optionally after a
// fault-injected extra latency.
func (d *Direct) launchAfter(pkt *Packet, delay sim.Time) {
	ch := d.chans[pkt.Src*d.nodes+pkt.Dst]
	if delay > 0 {
		d.eng.Schedule(delay, func() {
			ch.queue = append(ch.queue, pkt)
			ch.kick()
		})
		return
	}
	ch.queue = append(ch.queue, pkt)
	ch.kick()
}

// kick starts serializing the next packet. Serialization occupies the
// channel; the flight latency is pipelined (the next packet serializes
// while earlier ones are in flight), so a stream achieves full wire rate.
func (c *directChan) kick() {
	if c.busy || len(c.queue) == 0 {
		return
	}
	pkt := c.queue[0]
	c.queue = c.queue[1:]
	c.busy = true
	ser := sim.Time(0)
	if c.d.flit > 0 {
		ser = sim.Time((pkt.Size+15)/16) * c.d.flit
	}
	c.busyNs += ser
	c.d.eng.Schedule(ser, func() {
		c.busy = false
		c.d.eng.Schedule(c.d.latency, func() { c.arrive(pkt) })
		c.kick()
	})
}

func (c *directChan) arrive(pkt *Packet) {
	if c.d.faults != nil && c.d.faults.DropOnDelivery(pkt.Dst) {
		c.d.dropDead(pkt)
		return
	}
	// Preserve FIFO past a refusal: while anything is stalled, new arrivals
	// queue behind it.
	if len(c.stalled) > 0 {
		c.stallCnt.Events++
		c.stalled = append(c.stalled, pkt)
		return
	}
	if c.d.endpoints[pkt.Dst].TryDeliver(pkt) {
		c.d.delivered(pkt)
		return
	}
	c.d.stats.Refusals++
	c.stallCnt.Events++
	c.stalled = append(c.stalled, pkt)
}

// dropDead traces a packet killed at the delivery boundary (dead receiver).
func (d *Direct) dropDead(pkt *Packet) {
	if d.eng.Observed() && pkt.Trace.Traced() {
		d.eng.Instant(pkt.Dst, "net", "msg-drop",
			traceFields([]sim.Field{sim.Str("why", "dead")}, pkt.Trace)...)
	}
}

// InjectReady always reports true: the ideal fabric buffers without bound.
func (d *Direct) InjectReady(node int, pri Priority) bool { return true }

// SetReadyHook is a no-op on the ideal fabric (injection is always ready).
func (d *Direct) SetReadyHook(node int, fn func()) {}

// Poke retries refused deliveries destined for node.
func (d *Direct) Poke(node int) {
	for src := 0; src < d.nodes; src++ {
		ch := d.chans[src*d.nodes+node]
		for len(ch.stalled) > 0 {
			pkt := ch.stalled[0]
			if d.faults != nil && d.faults.DropOnDelivery(pkt.Dst) {
				ch.stalled = ch.stalled[1:]
				d.dropDead(pkt)
				continue
			}
			if !d.endpoints[node].TryDeliver(pkt) {
				d.stats.Refusals++
				break
			}
			ch.stalled = ch.stalled[1:]
			d.delivered(pkt)
		}
	}
}
