package arctic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"startvoyager/internal/sim"
)

// collector is a test endpoint recording deliveries, optionally refusing.
type collector struct {
	got    []*Packet
	refuse bool
}

func (c *collector) TryDeliver(p *Packet) bool {
	if c.refuse {
		return false
	}
	c.got = append(c.got, p)
	return true
}

func buildTree(t *testing.T, n int) (*sim.Engine, *FatTree, []*collector) {
	t.Helper()
	eng := sim.NewEngine()
	f := NewFatTree(eng, n, DefaultConfig())
	cols := make([]*collector, n)
	for i := range cols {
		cols[i] = &collector{}
		f.Attach(i, cols[i])
	}
	return eng, f, cols
}

func TestAllPairsDelivery(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 16, 32, 64} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			eng, f, cols := buildTree(t, n)
			sent := 0
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					f.Inject(&Packet{Src: s, Dst: d, Priority: Low, Size: 96,
						Payload: [2]int{s, d}})
					sent++
				}
			}
			eng.Run()
			got := 0
			for d, c := range cols {
				for _, p := range c.got {
					pay := p.Payload.([2]int)
					if pay[1] != d || p.Dst != d {
						t.Fatalf("misdelivery: %v arrived at %d", pay, d)
					}
					got++
				}
			}
			if got != sent {
				t.Fatalf("delivered %d of %d", got, sent)
			}
			if st := f.Stats(); st.Delivered != uint64(sent) || st.Injected != uint64(sent) {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

func TestHopCounts(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFatTree(eng, 16, DefaultConfig()) // 2 levels
	cases := []struct {
		s, d, hops int
	}{
		{0, 1, 2},  // same leaf switch: inject + eject
		{0, 0, 2},  // self via network
		{0, 4, 4},  // different leaf switch: inject, up, down, eject
		{0, 15, 4}, // farthest in a 2-level tree
	}
	for _, c := range cases {
		if got := f.HopCount(c.s, c.d); got != c.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.s, c.d, got, c.hops)
		}
	}
	f3 := NewFatTree(eng, 64, DefaultConfig()) // 3 levels
	if got := f3.HopCount(0, 63); got != 6 {
		t.Errorf("64-node far hop count = %d, want 6", got)
	}
	if got := f3.HopCount(0, 1); got != 2 {
		t.Errorf("64-node near hop count = %d, want 2", got)
	}
	if f3.Levels() != 3 {
		t.Errorf("levels = %d, want 3", f3.Levels())
	}
}

func TestLatencyModel(t *testing.T) {
	eng, f, cols := buildTree(t, 16)
	f.Inject(&Packet{Src: 0, Dst: 15, Priority: Low, Size: 96})
	eng.Run()
	if len(cols[15].got) != 1 {
		t.Fatal("not delivered")
	}
	// 4 links * 6 flits * 100ns + 3 router hops * 50ns = 2400 + 150.
	if eng.Now() != 2550 {
		t.Fatalf("delivery time = %v, want 2550ns", eng.Now())
	}
}

func TestLinkBandwidth(t *testing.T) {
	// Streaming 96-byte packets over one path: steady-state link rate must
	// be 160 MB/s (one 96B packet per 600ns).
	eng, f, cols := buildTree(t, 4)
	const count = 1000
	for i := 0; i < count; i++ {
		f.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96})
	}
	eng.Run()
	if len(cols[1].got) != count {
		t.Fatalf("delivered %d", len(cols[1].got))
	}
	// Pipeline: last packet leaves the inject link at count*600, crosses the
	// eject link by +600 (+router latency). Allow the small constant.
	wantMin, wantMax := sim.Time(count*600), sim.Time(count*600+1000)
	if eng.Now() < wantMin || eng.Now() > wantMax {
		t.Fatalf("stream finished at %v, want about %v", eng.Now(), wantMin)
	}
}

func TestPerPairFIFO(t *testing.T) {
	eng, f, cols := buildTree(t, 16)
	const count = 50
	for i := 0; i < count; i++ {
		f.Inject(&Packet{Src: 3, Dst: 12, Priority: Low, Size: 32, Payload: i})
	}
	eng.Run()
	for i, p := range cols[12].got {
		if p.Payload.(int) != i {
			t.Fatalf("reordered: position %d has %v", i, p.Payload)
		}
	}
}

func TestPriorityBypass(t *testing.T) {
	// Fill the low lane of a shared link, then inject one High packet: it
	// must be delivered before most of the Low backlog.
	eng, f, cols := buildTree(t, 4)
	for i := 0; i < 20; i++ {
		f.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96, Payload: "low"})
	}
	eng.Schedule(100, func() {
		f.Inject(&Packet{Src: 0, Dst: 1, Priority: High, Size: 32, Payload: "high"})
	})
	eng.Run()
	pos := -1
	for i, p := range cols[1].got {
		if p.Payload == "high" {
			pos = i
		}
	}
	if pos < 0 || pos > 4 {
		t.Fatalf("high-priority packet delivered at position %d of %d", pos, len(cols[1].got))
	}
}

func TestBackpressureAndPoke(t *testing.T) {
	eng, f, cols := buildTree(t, 4)
	cols[1].refuse = true
	for i := 0; i < 3; i++ {
		f.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96, Payload: i})
	}
	eng.Run()
	if len(cols[1].got) != 0 {
		t.Fatal("refused endpoint received packets")
	}
	if f.Stats().Refusals == 0 {
		t.Fatal("no refusals recorded")
	}
	cols[1].refuse = false
	// Pokes are how the NIU signals buffer space; each poke retries the
	// stalled head and restarts the lane.
	eng.Schedule(0, func() { f.Poke(1) })
	eng.Run()
	if len(cols[1].got) != 3 {
		t.Fatalf("after poke got %d packets", len(cols[1].got))
	}
	for i, p := range cols[1].got {
		if p.Payload.(int) != i {
			t.Fatalf("order broken after stall: %v", p.Payload)
		}
	}
}

func TestHighLaneUnaffectedByLowStall(t *testing.T) {
	// A refused Low packet must not block High traffic on the same final
	// link — this is the deadlock-avoidance property the paper requires of
	// the network ("at least two priority levels").
	eng := sim.NewEngine()
	f := NewFatTree(eng, 4, DefaultConfig())
	var delivered []*Packet
	sel := &selectiveEndpoint{}
	f.Attach(0, &collector{})
	f.Attach(1, sel)
	f.Attach(2, &collector{})
	f.Attach(3, &collector{})
	sel.accept = func(p *Packet) bool {
		if p.Priority == Low {
			return false
		}
		delivered = append(delivered, p)
		return true
	}
	f.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96})
	eng.Schedule(700, func() {
		f.Inject(&Packet{Src: 0, Dst: 1, Priority: High, Size: 32})
	})
	eng.Run()
	if len(delivered) != 1 || delivered[0].Priority != High {
		t.Fatalf("high packet blocked behind stalled low lane: %v", delivered)
	}
}

type selectiveEndpoint struct{ accept func(*Packet) bool }

func (s *selectiveEndpoint) TryDeliver(p *Packet) bool { return s.accept(p) }

func TestBadPacketPanics(t *testing.T) {
	eng, f, _ := buildTree(t, 4)
	for _, size := range []int{0, 8, 97} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for size %d", size)
				}
			}()
			f.Inject(&Packet{Src: 0, Dst: 1, Size: size})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for bad dst")
			}
		}()
		f.Inject(&Packet{Src: 0, Dst: 99, Size: 96})
	}()
	eng.Run()
}

// Property: for random tree sizes and node pairs, every injected packet is
// delivered exactly once to the right node, and hop count is within the
// structural bound 2*levels.
func TestRoutingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(63)
		eng := sim.NewEngine()
		tree := NewFatTree(eng, n, DefaultConfig())
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			tree.Attach(i, EndpointFunc(func(p *Packet) {
				if p.Dst != i {
					counts[i] = -1 << 30 // poison on misdelivery
					return
				}
				counts[i]++
			}))
		}
		want := make([]int, n)
		for m := 0; m < 200; m++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if tree.HopCount(s, d) > 2*tree.Levels() {
				return false
			}
			tree.Inject(&Packet{Src: s, Dst: d,
				Priority: Priority(rng.Intn(2)), Size: 9 + rng.Intn(88)})
			want[d]++
		}
		eng.Run()
		for i := range counts {
			if counts[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectFabric(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDirect(eng, 3, 250, 100)
	var got []*Packet
	for i := 0; i < 3; i++ {
		i := i
		d.Attach(i, EndpointFunc(func(p *Packet) {
			if p.Dst != i {
				t.Errorf("misdelivery to %d", i)
			}
			got = append(got, p)
		}))
	}
	d.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96})
	eng.Run()
	// 250ns latency + 6 flits * 100ns.
	if eng.Now() != 850 {
		t.Fatalf("direct delivery at %v, want 850", eng.Now())
	}
	if len(got) != 1 {
		t.Fatal("not delivered")
	}
}

func TestDirectBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDirect(eng, 2, 10, 0)
	c := &collector{refuse: true}
	d.Attach(0, &collector{})
	d.Attach(1, c)
	d.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96, Payload: 1})
	d.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96, Payload: 2})
	eng.Run()
	if len(c.got) != 0 {
		t.Fatal("refused but delivered")
	}
	c.refuse = false
	eng.Schedule(0, func() { d.Poke(1) })
	eng.Run()
	if len(c.got) != 2 {
		t.Fatalf("got %d after poke", len(c.got))
	}
	if c.got[0].Payload.(int) != 1 {
		t.Fatal("order broken")
	}
}

func TestAdaptiveRoutingDelivers(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Adaptive = true
	f := NewFatTree(eng, 16, cfg)
	counts := make([]int, 16)
	for i := 0; i < 16; i++ {
		i := i
		f.Attach(i, EndpointFunc(func(p *Packet) {
			if p.Dst != i {
				t.Errorf("misdelivery to %d", i)
			}
			counts[i]++
		}))
	}
	// Uniform random traffic.
	rng := rand.New(rand.NewSource(3))
	want := make([]int, 16)
	for k := 0; k < 500; k++ {
		s, d := rng.Intn(16), rng.Intn(16)
		f.Inject(&Packet{Src: s, Dst: d, Priority: Low, Size: 96})
		want[d]++
	}
	eng.Run()
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("node %d: got %d want %d", i, counts[i], want[i])
		}
	}
}

func TestAdaptiveRelievesUpLinkContention(t *testing.T) {
	// In a 64-node (3-level) tree, sources 0 and 4 share their last digit,
	// so deterministic routing funnels both flows onto the same level-0 up
	// link once their ascents converge; adaptive routing spreads them and
	// must drain faster.
	drain := func(adaptive bool) sim.Time {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Adaptive = adaptive
		f := NewFatTree(eng, 64, cfg)
		for i := 0; i < 64; i++ {
			f.Attach(i, EndpointFunc(func(p *Packet) {}))
		}
		for k := 0; k < 60; k++ {
			f.Inject(&Packet{Src: 0, Dst: 32 + k%16, Priority: Low, Size: 96})
			f.Inject(&Packet{Src: 4, Dst: 48 + k%16, Priority: Low, Size: 96})
		}
		eng.Run()
		return eng.Now()
	}
	det, ada := drain(false), drain(true)
	if ada >= det {
		t.Fatalf("adaptive (%v) not faster than deterministic (%v) under contention", ada, det)
	}
	t.Logf("drain: deterministic=%v adaptive=%v", det, ada)
}

// Property: with finite lane buffering, the number of packets resident in
// any lane's queue never exceeds the configured capacity, for random
// traffic (checked at every delivery).
func TestLaneCapacityProperty(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.LaneCapacity = 2
	f := NewFatTree(eng, 16, cfg)
	check := func() {
		for _, ls := range append(append([][]*link{f.inject, f.eject}, f.up...), f.down...) {
			for _, l := range ls {
				for pr := Priority(0); pr < numPriorities; pr++ {
					if len(l.queues[pr]) > cfg.LaneCapacity {
						t.Fatalf("lane %s/%v holds %d > cap %d",
							l.name(), pr, len(l.queues[pr]), cfg.LaneCapacity)
					}
				}
			}
		}
	}
	for i := 0; i < 16; i++ {
		f.Attach(i, EndpointFunc(func(p *Packet) { check() }))
	}
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 400; k++ {
		f.Inject(&Packet{Src: rng.Intn(16), Dst: rng.Intn(16),
			Priority: Priority(rng.Intn(2)), Size: 96})
	}
	eng.Run()
	check()
	if f.Stats().Delivered != 400 {
		t.Fatalf("delivered %d of 400", f.Stats().Delivered)
	}
}

func TestInjectReadySignal(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.LaneCapacity = 2
	f := NewFatTree(eng, 4, cfg)
	for i := 0; i < 4; i++ {
		f.Attach(i, EndpointFunc(func(p *Packet) {}))
	}
	hooks := 0
	f.SetReadyHook(0, func() { hooks++ })
	if !f.InjectReady(0, Low) {
		t.Fatal("fresh fabric not ready")
	}
	for i := 0; i < 10; i++ {
		f.Inject(&Packet{Src: 0, Dst: 1, Priority: Low, Size: 96})
	}
	if f.InjectReady(0, Low) {
		t.Fatal("flooded inject lane still ready")
	}
	if !f.InjectReady(0, High) {
		t.Fatal("High lane affected by Low flood")
	}
	eng.Run()
	if hooks == 0 {
		t.Fatal("ready hook never fired as the lane drained")
	}
	if !f.InjectReady(0, Low) {
		t.Fatal("drained lane not ready")
	}
}
