package arctic

import (
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
)

// Both fabrics consult a fault.Injector at two boundaries: once at injection
// (Judge — probabilistic drop/corrupt/duplicate/delay, outage windows, dead
// endpoints) and once at ejection (DropOnDelivery — in-flight packets whose
// destination died after injection die at the delivery boundary, as they
// would on real hardware whose receiver simply went away).

// judgeFault applies the injector's injection-time ruling to pkt. It returns
// the packets to actually launch — empty for a drop, the original (possibly
// with corrupted payload bytes) otherwise, plus an independent copy when the
// packet is duplicated — and the extra latency to charge each of them.
// countDup lets the fabric account the duplicate in its injection counters so
// delivered <= injected stays true.
func judgeFault(in *fault.Injector, pkt *Packet, countDup func(*Packet)) (launch []*Packet, delay sim.Time) {
	wire, _ := pkt.Payload.([]byte)
	v := in.Judge(pkt.Src, pkt.Dst, int(pkt.Priority), wire)
	if v.Drop {
		return nil, 0
	}
	if wire != nil {
		pkt.Payload = v.Wire
	}
	launch = append(launch, pkt)
	if v.Dup {
		dup := *pkt
		if wire != nil {
			dup.Payload = append([]byte(nil), v.Wire...)
		}
		countDup(&dup)
		launch = append(launch, &dup)
	}
	return launch, v.Delay
}
