// Package startvoyager is a cycle-approximate, deterministic simulation of
// the StarT-Voyager machine (Ang, Chiou, Rosenband, Ehrlich, Rudolph,
// Arvind — "StarT-Voyager: A Flexible Platform for Exploring Scalable SMP
// Issues", SuperComputing '98): a cluster of PowerPC SMP nodes whose second
// processor slot holds a flexible network interface unit connecting the
// memory bus to the MIT Arctic fat-tree network.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results. The user-facing entry points are
// internal/core (the machine and its communication mechanisms),
// internal/mpi (the MPI-style library), and internal/blockxfer (the paper's
// Section 6 experiment).
package startvoyager
