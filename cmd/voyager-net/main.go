// voyager-net characterizes the Arctic fat-tree fabric in isolation:
// unloaded latency by hop count, and aggregate throughput under uniform
// random all-to-all traffic.
//
// Usage:
//
//	voyager-net [-nodes n1,n2,...] [-packets p] [-trace file.json] [-metrics file.json]
//
// -nodes takes a comma-separated list of fabric sizes (e.g. 16,64,256); the
// whole characterization runs once per size. -trace / -metrics instrument
// the deterministic-routing load test of the LAST listed size and export its
// Perfetto trace / fabric metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bench"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

func main() {
	nodesList := flag.String("nodes", "16", "comma-separated endpoint counts (e.g. 16,64,256)")
	packets := flag.Int("packets", 2000, "packets for the load test")
	traceFile := flag.String("trace", "", "write a Perfetto trace of the deterministic load test")
	metricsFile := flag.String("metrics", "", "write the fabric metrics of the deterministic load test as JSON")
	flag.Parse()

	counts, err := bench.ParseNodeList(*nodesList)
	if err != nil {
		log.Fatalf("-nodes: %v", err)
	}
	for i, nodes := range counts {
		if i > 0 {
			fmt.Println()
		}
		// Artifacts instrument one run only — the last listed size.
		instrument := i == len(counts)-1
		characterize(nodes, *packets, instrument, *traceFile, *metricsFile)
	}
}

// characterize runs the unloaded-latency probe and the uniform-random load
// test (deterministic and adaptive routing) on a fabric of the given size.
func characterize(nodes, packets int, instrument bool, traceFile, metricsFile string) {
	// Unloaded latency by destination distance.
	eng := sim.NewEngine()
	f := arctic.NewFatTree(eng, nodes, arctic.DefaultConfig())
	arrival := make(map[int]sim.Time)
	for i := 0; i < nodes; i++ {
		i := i
		f.Attach(i, arctic.EndpointFunc(func(p *arctic.Packet) {
			arrival[i] = eng.Now() - p.InjectedAt()
		}))
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("unloaded latency, %d-node fat tree (96B packets)", nodes),
		Columns: []string{"dst", "hops", "latency"},
	}
	for _, dst := range []int{1, nodes / 4, nodes - 1} {
		if dst <= 0 || dst >= nodes {
			continue
		}
		eng.Schedule(0, func() {
			f.Inject(&arctic.Packet{Src: 0, Dst: dst, Priority: arctic.Low, Size: 96})
		})
		eng.Run()
		t.AddRow(fmt.Sprint(dst), fmt.Sprint(f.HopCount(0, dst)), arrival[dst].String())
	}
	fmt.Print(t)
	fmt.Println()

	// Uniform random load, deterministic vs adaptive routing.
	for _, adaptive := range []bool{false, true} {
		eng2 := sim.NewEngine()
		cfg := arctic.DefaultConfig()
		cfg.Adaptive = adaptive
		f2 := arctic.NewFatTree(eng2, nodes, cfg)
		// Instrument the deterministic run only — one engine, one artifact.
		var tbuf *trace.Buffer
		var reg *stats.Registry
		if instrument && !adaptive {
			if traceFile != "" {
				tbuf = trace.Attach(eng2, 1<<18)
			}
			if metricsFile != "" {
				reg = stats.NewRegistry()
				f2.RegisterMetrics(reg.Child("net"))
			}
		}
		for i := 0; i < nodes; i++ {
			f2.Attach(i, arctic.EndpointFunc(func(p *arctic.Packet) {}))
		}
		rng := rand.New(rand.NewSource(1))
		for k := 0; k < packets; k++ {
			src, dst := rng.Intn(nodes), rng.Intn(nodes)
			f2.Inject(&arctic.Packet{Src: src, Dst: dst, Priority: arctic.Low, Size: 96})
		}
		eng2.Run()
		st := f2.Stats()
		name := "deterministic"
		if adaptive {
			name = "adaptive"
		}
		fmt.Printf("uniform random (%s): %d packets (%d bytes) drained in %v — aggregate %.1f MB/s\n",
			name, st.Delivered, st.Bytes, eng2.Now(),
			float64(st.Bytes)/float64(eng2.Now())*1e3)
		if tbuf != nil {
			writeFile(traceFile, func(f *os.File) error { return tbuf.WritePerfetto(f) })
			fmt.Printf("trace: %s\n", traceFile)
		}
		if reg != nil {
			writeFile(metricsFile, func(f *os.File) error { return reg.WriteJSON(f, eng2.Now()) })
			fmt.Printf("metrics: %s\n", metricsFile)
		}
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
