// voyager-run executes a configurable message-passing workload on a
// simulated StarT-Voyager machine and reports hardware-level statistics —
// a quick way to poke at the machine without writing a program.
//
// Usage:
//
//	voyager-run [-nodes n] [-mech basic|express|dma] [-count c] [-size s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of nodes (all-to-one traffic)")
	mech := flag.String("mech", "basic", "mechanism: basic, express, dma")
	count := flag.Int("count", 100, "messages (or transfers) per sender")
	size := flag.Int("size", 64, "payload bytes (dma: transfer bytes, line-aligned)")
	traceN := flag.Int("trace", 0, "dump the last N bus transactions of node 0")
	flag.Parse()

	m := core.NewMachine(*nodes)
	var tbuf *trace.Buffer
	if *traceN > 0 {
		tbuf = trace.New(m.Eng, *traceN)
		trace.AttachBus(tbuf, m.Nodes[0].Bus, 0)
	}
	senders := *nodes - 1
	total := senders * *count

	received := 0
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		for received < total {
			switch *mech {
			case "basic":
				if _, _, ok := a.TryRecvBasic(p); ok {
					received++
				}
			case "express":
				if _, _, ok := a.TryRecvExpress(p); ok {
					received++
				}
			case "dma":
				a.RecvNotify(p)
				received++
			}
		}
	})
	for i := 1; i < *nodes; i++ {
		i := i
		m.Go(i, "src", func(p *sim.Proc, a *core.API) {
			for k := 0; k < *count; k++ {
				switch *mech {
				case "basic":
					payload := make([]byte, min(*size, core.MaxBasicPayload))
					a.SendBasic(p, 0, payload)
				case "express":
					a.SendExpress(p, 0, []byte{byte(k)})
					a.Compute(p, 2*sim.Microsecond) // pace: express drops on overflow
				case "dma":
					n := *size &^ 31
					if n == 0 {
						n = 32
					}
					a.DmaPush(p, 0, 0x10_0000, uint32(0x20_0000+i*0x1_0000), n, uint32(k))
				default:
					log.Fatalf("unknown mechanism %q", *mech)
				}
			}
		})
	}
	m.Run()

	fmt.Printf("mechanism=%s nodes=%d messages=%d simulated=%v\n",
		*mech, *nodes, total, m.Eng.Now())
	t := &stats.Table{
		Title:   "per-node statistics",
		Columns: []string{"node", "aP-busy", "sP-busy", "bus-busy", "ibus-busy", "tx-msgs", "rx-msgs"},
	}
	for _, n := range m.Nodes {
		cs := n.Ctrl.Stats()
		t.AddRow(fmt.Sprint(n.ID),
			n.APMeter.BusyTime().String(),
			n.FW.BusyTime().String(),
			n.Bus.BusyTime().String(),
			n.Ctrl.IBusBusyTime().String(),
			fmt.Sprint(cs.TxMessages),
			fmt.Sprint(cs.RxMessages))
	}
	fmt.Print(t)
	if tbuf != nil {
		fmt.Printf("\nlast %d bus transactions on node 0:\n", tbuf.Len())
		tbuf.Dump(os.Stdout)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
