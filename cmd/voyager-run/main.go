// voyager-run executes a configurable message-passing workload on a
// simulated StarT-Voyager machine and reports hardware-level statistics —
// a quick way to poke at the machine without writing a program.
//
// Usage:
//
//	voyager-run [-nodes n1,n2,...] [-mech basic|express|dma|reliable] [-count c] [-size s]
//	            [-faults plan] [-trace file.json] [-metrics file.json] [-dump n]
//	            [-series file.json] [-series-window 20us] [-strict-trace]
//	            [-seeds 1,2,3] [-parallel n] [-cpuprofile f] [-memprofile f]
//
// -trace writes a Chrome trace-event (Perfetto) file of the run; open it at
// ui.perfetto.dev. -metrics dumps the hierarchical metrics registry as JSON.
// Both are byte-identical across runs with the same arguments.
//
// -series attaches the windowed telemetry sampler (window width set by
// -series-window, simulated time) and writes the voyager-series/v1 export:
// per-window min/max/sum/count for every registered metric, O(windows)
// memory however long the run. Render it with voyager-stats. The sampler
// scrapes out of band and never perturbs simulated outcomes.
//
// -strict-trace attaches the trace ring and exits nonzero when it dropped
// events — the CI guard that a run's trace artifact is complete.
//
// -faults attaches a deterministic fault-injection plan to the network, e.g.
//
//	voyager-run -mech reliable -faults 'seed=7,drop=0.05,corrupt=0.02'
//	voyager-run -mech reliable -faults 'outage=1-0@20us:200us'
//
// See internal/fault.ParsePlan for the full plan grammar (drop/corrupt/dup/
// delay per lane, link outage windows, node deaths).
//
// -nodes takes a comma-separated machine-size list: a single count runs the
// workload once with full reporting; several counts run a node-count sweep
// and print one deterministic summary row per size (combinable with
// -parallel, not with the per-run artifact flags).
//
// -seeds runs the workload once per listed seed (each run re-seeds the fault
// plan) and prints a per-seed summary table — the quick schedule-robustness
// sweep. Each seed's machine is independent, so -parallel n fans the runs
// across up to n OS workers; the table is identical at any worker count.
// -seeds cannot be combined with the per-run artifacts (-trace/-metrics/-dump).
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the simulator
// itself (inspect with `go tool pprof`); they profile the host process and
// never perturb simulated time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"startvoyager/internal/bench"
	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/prof"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

// runOpts is one machine run's configuration.
type runOpts struct {
	nodes, count, size int
	mech               string
	plan               *fault.Plan
	faultsSpec         string // original -faults text, recorded in run metadata
	traceCap           int
	trace              bool
	seriesWindow       sim.Time // 0: no windowed telemetry sampler
	profile            bool     // attach the simulated-time profiler
}

// runResult carries the counters the report paths need, plus the machine for
// the single-run artifact writers.
type runResult struct {
	m                      *core.Machine
	tbuf                   *trace.Buffer
	sampler                *stats.Sampler
	profiler               *prof.Profiler
	received, failed       int
	retrans, dups, garbage uint64
}

// runOnce builds a machine, drives the all-to-one traffic pattern, and
// collects delivery/recovery counters. It is a pure function of its options,
// so independent runs may execute on parallel workers.
func runOnce(o runOpts) runResult {
	cfg := cluster.DefaultConfig(o.nodes)
	cfg.Faults = o.plan
	var profiler *prof.Profiler
	if o.profile {
		// Attached through the config so firmware loops spawned during
		// machine construction are accounted from time zero.
		profiler = prof.New()
		cfg.Profiler = profiler
	}
	m := core.NewMachineConfig(cfg)
	var tbuf *trace.Buffer
	if o.trace {
		tbuf = m.Trace(o.traceCap)
	}
	var sampler *stats.Sampler
	if o.seriesWindow > 0 {
		sampler = m.Series(stats.SamplerConfig{Window: o.seriesWindow})
	}
	senders := o.nodes - 1
	total := senders * o.count

	received := 0
	failed := 0
	sendersDone := 0
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		if o.mech == "reliable" {
			// Senders may legitimately fail under a fault plan (dead peers),
			// so the sink drains with a bounded wait and leaves once every
			// sender has finished and the pipeline has gone quiet.
			for {
				if _, _, err := a.RecvReliableTimeout(p, m.RelBound()); err != nil {
					if sendersDone == senders {
						return
					}
					continue
				}
				received++
			}
		}
		for received < total {
			switch o.mech {
			case "basic", "tagon":
				if _, _, ok := a.TryRecvBasic(p); ok {
					received++
				}
			case "express":
				if _, _, ok := a.TryRecvExpress(p); ok {
					received++
				}
			case "dma":
				a.RecvNotify(p)
				received++
			}
		}
	})
	for i := 1; i < o.nodes; i++ {
		i := i
		m.Go(i, "src", func(p *sim.Proc, a *core.API) {
			for k := 0; k < o.count; k++ {
				switch o.mech {
				case "basic":
					payload := make([]byte, min(o.size, core.MaxBasicPayload))
					a.SendBasic(p, 0, payload)
				case "tagon":
					// Inline byte + one 16-byte aSRAM tag appended by the NIU.
					a.SendTagOn(p, 0, []byte{byte(k)}, 0x400, 16)
				case "express":
					a.SendExpress(p, 0, []byte{byte(k)})
					a.Compute(p, 2*sim.Microsecond) // pace: express drops on overflow
				case "reliable":
					payload := make([]byte, min(o.size, core.MaxReliablePayload))
					if err := a.SendReliable(p, 0, payload); err != nil {
						failed++
					}
				case "dma":
					n := o.size &^ 31
					if n == 0 {
						n = 32
					}
					a.DmaPush(p, 0, 0x10_0000, uint32(0x20_0000+i*0x1_0000), n, uint32(k))
				default:
					log.Fatalf("unknown mechanism %q", o.mech)
				}
			}
			sendersDone++
		})
	}
	m.Run()
	if sampler != nil {
		sampler.Finish()
	}
	if profiler != nil {
		profiler.Finish(m.Eng.Now())
	}

	r := runResult{m: m, tbuf: tbuf, sampler: sampler, profiler: profiler,
		received: received, failed: failed}
	for _, rel := range m.Rels {
		st := rel.Stats()
		r.retrans += st.Retransmits
		r.dups += st.DupSuppressed
	}
	for _, n := range m.Nodes {
		r.garbage += n.Ctrl.Stats().RxGarbage
	}
	return r
}

func main() {
	nodes := flag.String("nodes", "4", "comma-separated node counts (all-to-one traffic; more than one count runs a sweep)")
	mech := flag.String("mech", "basic", "mechanism: basic, express, tagon, dma, reliable")
	count := flag.Int("count", 100, "messages (or transfers) per sender")
	size := flag.Int("size", 64, "payload bytes (dma: transfer bytes, line-aligned)")
	faults := flag.String("faults", "", "fault-injection plan (e.g. 'seed=7,drop=0.05,outage=1-0@20us:200us')")
	traceFile := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file")
	metricsFile := flag.String("metrics", "", "write the metrics registry as JSON")
	dumpN := flag.Int("dump", 0, "print the last N structured trace events")
	traceCap := flag.Int("trace-cap", 1<<18, "trace ring capacity (oldest events drop beyond this)")
	seriesFile := flag.String("series", "", "write windowed time-series telemetry (voyager-series/v1, render with voyager-stats)")
	seriesWindow := flag.String("series-window", "20us", "simulated-time window width for -series (Go duration)")
	strictTrace := flag.Bool("strict-trace", false, "exit nonzero if the trace ring dropped events (implies tracing)")
	seeds := flag.String("seeds", "", "comma-separated fault-plan seeds: run once per seed and print a summary table")
	parallelN := flag.Int("parallel", 1, "max OS worker goroutines for the -seeds sweep (output is identical at any value)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulator process")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the simulator process")
	profFile := flag.String("prof", "", "write a simulated-time profile (voyager-prof/v1 JSON, render with voyager-prof)")
	profFolded := flag.String("prof-folded", "", "write the simulated-time profile as folded flame-graph stacks")
	profPprof := flag.String("prof-pprof", "", "write the simulated-time profile as pprof protobuf (open with `go tool pprof`)")
	flag.Parse()

	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	nodeCounts, err := bench.ParseNodeList(*nodes)
	if err != nil {
		log.Fatalf("-nodes: %v", err)
	}
	var plan *fault.Plan
	if *faults != "" {
		plan, err = fault.ParsePlan(*faults)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
	}
	opts := runOpts{
		nodes: nodeCounts[0], count: *count, size: *size, mech: *mech,
		plan: plan, faultsSpec: *faults, traceCap: *traceCap,
		trace:   *traceFile != "" || *dumpN > 0 || *strictTrace,
		profile: *profFile != "" || *profFolded != "" || *profPprof != "",
	}
	if *seriesFile != "" {
		w, err := time.ParseDuration(*seriesWindow)
		if err != nil || w <= 0 {
			log.Fatalf("-series-window: invalid duration %q", *seriesWindow)
		}
		opts.seriesWindow = sim.Time(w.Nanoseconds())
	}

	if len(nodeCounts) > 1 {
		if opts.trace || *metricsFile != "" || *seriesFile != "" || opts.profile || *seeds != "" {
			log.Fatalf("a -nodes sweep cannot be combined with -trace, -metrics, -series, -prof, -dump, or -seeds")
		}
		runNodeSweep(opts, nodeCounts, *parallelN)
		return
	}
	if *seeds != "" {
		if opts.trace || *metricsFile != "" || *seriesFile != "" || opts.profile {
			log.Fatalf("-seeds cannot be combined with -trace, -metrics, -series, -prof, or -dump")
		}
		runSweep(opts, parseSeeds(*seeds), *parallelN)
		return
	}

	r := runOnce(opts)
	report(opts, r, *traceFile, *metricsFile, *seriesFile, *dumpN)
	writeProfiles(opts, r, *profFile, *profFolded, *profPprof)
	if *strictTrace {
		if d := r.tbuf.Stats().Dropped; d > 0 {
			fmt.Fprintf(os.Stderr, "strict-trace: ring dropped %d events\n", d)
			stopProfiles()
			os.Exit(1)
		}
	}
}

// parseSeeds parses the -seeds list.
func parseSeeds(s string) []uint64 {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		seed, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			log.Fatalf("-seeds: %v", err)
		}
		out = append(out, seed)
	}
	return out
}

// runNodeSweep executes one run per machine size across up to workers
// goroutines and prints the per-size summary in listed order. Delivery
// counters and simulated time are deterministic per size, so the table is
// byte-identical at any -parallel value.
func runNodeSweep(opts runOpts, counts []int, workers int) {
	results := bench.Cells(len(counts), workers, func(i int) runResult {
		o := opts
		o.nodes = counts[i]
		return runOnce(o)
	})
	t := &stats.Table{
		Title: fmt.Sprintf("node-count sweep — mechanism=%s messages/sender=%d",
			opts.mech, opts.count),
		Columns: []string{"nodes", "delivered", "failed", "retransmits",
			"dup-suppressed", "rx-garbage", "sim-time"},
	}
	for i, r := range results {
		t.AddRow(fmt.Sprint(counts[i]),
			fmt.Sprint(r.received), fmt.Sprint(r.failed),
			fmt.Sprint(r.retrans), fmt.Sprint(r.dups), fmt.Sprint(r.garbage),
			r.m.Eng.Now().String())
	}
	fmt.Print(t)
}

// runSweep executes one run per seed (re-seeding the fault plan) across up
// to workers goroutines and prints the per-seed summary in seed order.
func runSweep(opts runOpts, seedList []uint64, workers int) {
	results := bench.Cells(len(seedList), workers, func(i int) runResult {
		o := opts
		if opts.plan != nil {
			p := *opts.plan
			p.Seed = seedList[i]
			o.plan = &p
		}
		return runOnce(o)
	})
	t := &stats.Table{
		Title: fmt.Sprintf("multi-seed sweep — mechanism=%s nodes=%d messages=%d per seed",
			opts.mech, opts.nodes, (opts.nodes-1)*opts.count),
		Columns: []string{"seed", "delivered", "failed", "retransmits",
			"dup-suppressed", "rx-garbage", "sim-time"},
	}
	for i, r := range results {
		t.AddRow(fmt.Sprint(seedList[i]),
			fmt.Sprint(r.received), fmt.Sprint(r.failed),
			fmt.Sprint(r.retrans), fmt.Sprint(r.dups), fmt.Sprint(r.garbage),
			r.m.Eng.Now().String())
	}
	fmt.Print(t)
	if opts.plan == nil {
		fmt.Println("note: no -faults plan attached; seeds have nothing to re-seed, runs are identical")
	}
}

// runMeta describes the run for the metrics and series export headers.
func runMeta(opts runOpts, m *core.Machine) *stats.RunMeta {
	meta := &stats.RunMeta{
		Tool: "voyager-run", Mechanism: opts.mech, Nodes: opts.nodes,
		FaultPlan: opts.faultsSpec, SimTimeNs: int64(m.Eng.Now()),
	}
	if opts.plan != nil {
		meta.Seed = opts.plan.Seed
	}
	return meta
}

// report prints the single-run statistics and writes the requested artifacts.
func report(opts runOpts, r runResult, traceFile, metricsFile, seriesFile string, dumpN int) {
	m, tbuf := r.m, r.tbuf
	total := (opts.nodes - 1) * opts.count
	fmt.Printf("mechanism=%s nodes=%d messages=%d simulated=%v\n",
		opts.mech, opts.nodes, total, m.Eng.Now())
	if opts.mech == "reliable" {
		fmt.Printf("reliable: delivered=%d failed=%d bound=%v\n", r.received, r.failed, m.RelBound())
	}
	if m.Faults != nil {
		fs := m.Faults.Stats()
		fmt.Printf("faults: drops=%d corrupted=%d duplicated=%d delayed=%d outage-drops=%d death-drops=%d\n",
			fs.InjectedDrops, fs.Corrupted, fs.Duplicated, fs.Delayed, fs.OutageDrops, fs.DeathDrops)
		fmt.Printf("recovery: retransmits=%d dup-suppressed=%d rx-garbage=%d\n",
			r.retrans, r.dups, r.garbage)
	}
	t := &stats.Table{
		Title:   "per-node statistics",
		Columns: []string{"node", "aP-busy", "sP-busy", "bus-busy", "ibus-busy", "tx-msgs", "rx-msgs"},
	}
	for _, n := range m.Nodes {
		cs := n.Ctrl.Stats()
		t.AddRow(fmt.Sprint(n.ID),
			n.APMeter.BusyTime().String(),
			n.FW.BusyTime().String(),
			n.Bus.BusyTime().String(),
			n.Ctrl.IBusBusyTime().String(),
			fmt.Sprint(cs.TxMessages),
			fmt.Sprint(cs.RxMessages))
	}
	fmt.Print(t)

	if traceFile != "" {
		writeFile(traceFile, func(f *os.File) error { return tbuf.WritePerfetto(f) })
		ts := tbuf.Stats()
		fmt.Printf("trace: %s (%d events captured, %d retained)\n",
			traceFile, ts.Captured, ts.Retained)
	}
	if tbuf != nil {
		if d := tbuf.Stats().Dropped; d > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: trace ring dropped %d events; the trace is truncated (raise -trace-cap)\n", d)
		}
	}
	if metricsFile != "" {
		writeFile(metricsFile, func(f *os.File) error {
			return m.Metrics().WriteJSONMeta(f, m.Eng.Now(), runMeta(opts, m))
		})
		fmt.Printf("metrics: %s\n", metricsFile)
	}
	if seriesFile != "" {
		writeFile(seriesFile, func(f *os.File) error {
			return r.sampler.WriteJSON(f, runMeta(opts, m))
		})
		fmt.Printf("series: %s (%d windows of %v, render with voyager-stats)\n",
			seriesFile, r.sampler.Windows(), opts.seriesWindow)
	}
	if dumpN > 0 {
		evs := tbuf.Events()
		if len(evs) > dumpN {
			evs = evs[len(evs)-dumpN:]
		}
		fmt.Printf("\nlast %d structured trace events:\n", len(evs))
		for _, e := range evs {
			fmt.Println(e.String())
		}
	}
}

// writeProfiles exports the simulated-time profile in the requested formats.
// All three derive from the same document, so their totals agree exactly.
func writeProfiles(opts runOpts, r runResult, jsonFile, foldedFile, pprofFile string) {
	if r.profiler == nil {
		return
	}
	doc := r.profiler.Doc(runMeta(opts, r.m))
	if jsonFile != "" {
		writeFile(jsonFile, func(f *os.File) error { return doc.WriteJSON(f) })
		fmt.Printf("prof: %s (render with voyager-prof)\n", jsonFile)
	}
	if foldedFile != "" {
		writeFile(foldedFile, func(f *os.File) error { return doc.WriteFolded(f) })
		fmt.Printf("prof-folded: %s (flamegraph.pl / speedscope)\n", foldedFile)
	}
	if pprofFile != "" {
		writeFile(pprofFile, func(f *os.File) error { return doc.WritePprof(f) })
		fmt.Printf("prof-pprof: %s (go tool pprof)\n", pprofFile)
	}
}

// startProfiles begins the requested pprof captures and returns an
// idempotent stop function that flushes them; it must run before exit for
// the profiles to be valid.
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		cpuF = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				log.Fatalf("-cpuprofile: %v", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
		}
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
