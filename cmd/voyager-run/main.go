// voyager-run executes a configurable message-passing workload on a
// simulated StarT-Voyager machine and reports hardware-level statistics —
// a quick way to poke at the machine without writing a program.
//
// Usage:
//
//	voyager-run [-nodes n] [-mech basic|express|dma|reliable] [-count c] [-size s]
//	            [-faults plan] [-trace file.json] [-metrics file.json] [-dump n]
//
// -trace writes a Chrome trace-event (Perfetto) file of the run; open it at
// ui.perfetto.dev. -metrics dumps the hierarchical metrics registry as JSON.
// Both are byte-identical across runs with the same arguments.
//
// -faults attaches a deterministic fault-injection plan to the network, e.g.
//
//	voyager-run -mech reliable -faults 'seed=7,drop=0.05,corrupt=0.02'
//	voyager-run -mech reliable -faults 'outage=1-0@20us:200us'
//
// See internal/fault.ParsePlan for the full plan grammar (drop/corrupt/dup/
// delay per lane, link outage windows, node deaths).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of nodes (all-to-one traffic)")
	mech := flag.String("mech", "basic", "mechanism: basic, express, tagon, dma, reliable")
	count := flag.Int("count", 100, "messages (or transfers) per sender")
	size := flag.Int("size", 64, "payload bytes (dma: transfer bytes, line-aligned)")
	faults := flag.String("faults", "", "fault-injection plan (e.g. 'seed=7,drop=0.05,outage=1-0@20us:200us')")
	traceFile := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file")
	metricsFile := flag.String("metrics", "", "write the metrics registry as JSON")
	dumpN := flag.Int("dump", 0, "print the last N structured trace events")
	traceCap := flag.Int("trace-cap", 1<<18, "trace ring capacity (oldest events drop beyond this)")
	flag.Parse()

	cfg := cluster.DefaultConfig(*nodes)
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		cfg.Faults = plan
	}
	m := core.NewMachineConfig(cfg)
	var tbuf *trace.Buffer
	if *traceFile != "" || *dumpN > 0 {
		tbuf = m.Trace(*traceCap)
	}
	senders := *nodes - 1
	total := senders * *count

	received := 0
	failed := 0
	sendersDone := 0
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		if *mech == "reliable" {
			// Senders may legitimately fail under a fault plan (dead peers),
			// so the sink drains with a bounded wait and leaves once every
			// sender has finished and the pipeline has gone quiet.
			for {
				if _, _, err := a.RecvReliableTimeout(p, m.RelBound()); err != nil {
					if sendersDone == senders {
						return
					}
					continue
				}
				received++
			}
		}
		for received < total {
			switch *mech {
			case "basic", "tagon":
				if _, _, ok := a.TryRecvBasic(p); ok {
					received++
				}
			case "express":
				if _, _, ok := a.TryRecvExpress(p); ok {
					received++
				}
			case "dma":
				a.RecvNotify(p)
				received++
			}
		}
	})
	for i := 1; i < *nodes; i++ {
		i := i
		m.Go(i, "src", func(p *sim.Proc, a *core.API) {
			for k := 0; k < *count; k++ {
				switch *mech {
				case "basic":
					payload := make([]byte, min(*size, core.MaxBasicPayload))
					a.SendBasic(p, 0, payload)
				case "tagon":
					// Inline byte + one 16-byte aSRAM tag appended by the NIU.
					a.SendTagOn(p, 0, []byte{byte(k)}, 0x400, 16)
				case "express":
					a.SendExpress(p, 0, []byte{byte(k)})
					a.Compute(p, 2*sim.Microsecond) // pace: express drops on overflow
				case "reliable":
					payload := make([]byte, min(*size, core.MaxReliablePayload))
					if err := a.SendReliable(p, 0, payload); err != nil {
						failed++
					}
				case "dma":
					n := *size &^ 31
					if n == 0 {
						n = 32
					}
					a.DmaPush(p, 0, 0x10_0000, uint32(0x20_0000+i*0x1_0000), n, uint32(k))
				default:
					log.Fatalf("unknown mechanism %q", *mech)
				}
			}
			sendersDone++
		})
	}
	m.Run()

	fmt.Printf("mechanism=%s nodes=%d messages=%d simulated=%v\n",
		*mech, *nodes, total, m.Eng.Now())
	if *mech == "reliable" {
		fmt.Printf("reliable: delivered=%d failed=%d bound=%v\n", received, failed, m.RelBound())
	}
	if m.Faults != nil {
		fs := m.Faults.Stats()
		var retrans, dups uint64
		var garbage uint64
		for _, r := range m.Rels {
			retrans += r.Stats().Retransmits
			dups += r.Stats().DupSuppressed
		}
		for _, n := range m.Nodes {
			garbage += n.Ctrl.Stats().RxGarbage
		}
		fmt.Printf("faults: drops=%d corrupted=%d duplicated=%d delayed=%d outage-drops=%d death-drops=%d\n",
			fs.InjectedDrops, fs.Corrupted, fs.Duplicated, fs.Delayed, fs.OutageDrops, fs.DeathDrops)
		fmt.Printf("recovery: retransmits=%d dup-suppressed=%d rx-garbage=%d\n", retrans, dups, garbage)
	}
	t := &stats.Table{
		Title:   "per-node statistics",
		Columns: []string{"node", "aP-busy", "sP-busy", "bus-busy", "ibus-busy", "tx-msgs", "rx-msgs"},
	}
	for _, n := range m.Nodes {
		cs := n.Ctrl.Stats()
		t.AddRow(fmt.Sprint(n.ID),
			n.APMeter.BusyTime().String(),
			n.FW.BusyTime().String(),
			n.Bus.BusyTime().String(),
			n.Ctrl.IBusBusyTime().String(),
			fmt.Sprint(cs.TxMessages),
			fmt.Sprint(cs.RxMessages))
	}
	fmt.Print(t)

	if *traceFile != "" {
		writeFile(*traceFile, func(f *os.File) error { return tbuf.WritePerfetto(f) })
		ts := tbuf.Stats()
		fmt.Printf("trace: %s (%d events captured, %d retained)\n",
			*traceFile, ts.Captured, ts.Retained)
	}
	if tbuf != nil {
		if d := tbuf.Stats().Dropped; d > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: trace ring dropped %d events; the trace is truncated (raise -trace-cap)\n", d)
		}
	}
	if *metricsFile != "" {
		writeFile(*metricsFile, func(f *os.File) error {
			return m.Metrics().WriteJSON(f, m.Eng.Now())
		})
		fmt.Printf("metrics: %s\n", *metricsFile)
	}
	if *dumpN > 0 {
		evs := tbuf.Events()
		if len(evs) > *dumpN {
			evs = evs[len(evs)-*dumpN:]
		}
		fmt.Printf("\nlast %d structured trace events:\n", len(evs))
		for _, e := range evs {
			fmt.Println(e.String())
		}
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
