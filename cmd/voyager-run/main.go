// voyager-run executes a configurable message-passing workload on a
// simulated StarT-Voyager machine and reports hardware-level statistics —
// a quick way to poke at the machine without writing a program.
//
// Usage:
//
//	voyager-run [-nodes n] [-mech basic|express|dma] [-count c] [-size s]
//	            [-trace file.json] [-metrics file.json] [-dump n]
//
// -trace writes a Chrome trace-event (Perfetto) file of the run; open it at
// ui.perfetto.dev. -metrics dumps the hierarchical metrics registry as JSON.
// Both are byte-identical across runs with the same arguments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of nodes (all-to-one traffic)")
	mech := flag.String("mech", "basic", "mechanism: basic, express, dma")
	count := flag.Int("count", 100, "messages (or transfers) per sender")
	size := flag.Int("size", 64, "payload bytes (dma: transfer bytes, line-aligned)")
	traceFile := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file")
	metricsFile := flag.String("metrics", "", "write the metrics registry as JSON")
	dumpN := flag.Int("dump", 0, "print the last N structured trace events")
	traceCap := flag.Int("trace-cap", 1<<18, "trace ring capacity (oldest events drop beyond this)")
	flag.Parse()

	m := core.NewMachine(*nodes)
	var tbuf *trace.Buffer
	if *traceFile != "" || *dumpN > 0 {
		tbuf = m.Trace(*traceCap)
	}
	senders := *nodes - 1
	total := senders * *count

	received := 0
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		for received < total {
			switch *mech {
			case "basic":
				if _, _, ok := a.TryRecvBasic(p); ok {
					received++
				}
			case "express":
				if _, _, ok := a.TryRecvExpress(p); ok {
					received++
				}
			case "dma":
				a.RecvNotify(p)
				received++
			}
		}
	})
	for i := 1; i < *nodes; i++ {
		i := i
		m.Go(i, "src", func(p *sim.Proc, a *core.API) {
			for k := 0; k < *count; k++ {
				switch *mech {
				case "basic":
					payload := make([]byte, min(*size, core.MaxBasicPayload))
					a.SendBasic(p, 0, payload)
				case "express":
					a.SendExpress(p, 0, []byte{byte(k)})
					a.Compute(p, 2*sim.Microsecond) // pace: express drops on overflow
				case "dma":
					n := *size &^ 31
					if n == 0 {
						n = 32
					}
					a.DmaPush(p, 0, 0x10_0000, uint32(0x20_0000+i*0x1_0000), n, uint32(k))
				default:
					log.Fatalf("unknown mechanism %q", *mech)
				}
			}
		})
	}
	m.Run()

	fmt.Printf("mechanism=%s nodes=%d messages=%d simulated=%v\n",
		*mech, *nodes, total, m.Eng.Now())
	t := &stats.Table{
		Title:   "per-node statistics",
		Columns: []string{"node", "aP-busy", "sP-busy", "bus-busy", "ibus-busy", "tx-msgs", "rx-msgs"},
	}
	for _, n := range m.Nodes {
		cs := n.Ctrl.Stats()
		t.AddRow(fmt.Sprint(n.ID),
			n.APMeter.BusyTime().String(),
			n.FW.BusyTime().String(),
			n.Bus.BusyTime().String(),
			n.Ctrl.IBusBusyTime().String(),
			fmt.Sprint(cs.TxMessages),
			fmt.Sprint(cs.RxMessages))
	}
	fmt.Print(t)

	if *traceFile != "" {
		writeFile(*traceFile, func(f *os.File) error { return tbuf.WritePerfetto(f) })
		ts := tbuf.Stats()
		fmt.Printf("trace: %s (%d events captured, %d retained)\n",
			*traceFile, ts.Captured, ts.Retained)
	}
	if *metricsFile != "" {
		writeFile(*metricsFile, func(f *os.File) error {
			return m.Metrics().WriteJSON(f, m.Eng.Now())
		})
		fmt.Printf("metrics: %s\n", *metricsFile)
	}
	if *dumpN > 0 {
		evs := tbuf.Events()
		if len(evs) > *dumpN {
			evs = evs[len(evs)-*dumpN:]
		}
		fmt.Printf("\nlast %d structured trace events:\n", len(evs))
		for _, e := range evs {
			fmt.Println(e.String())
		}
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
