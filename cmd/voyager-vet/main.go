// Command voyager-vet checks the simulator's determinism contract: a
// multichecker that runs the internal/lint analyzer suite (nowalltime,
// noglobalrand, nomaporder, nogoroutine, simtimeunits) and, by default, the
// standard `go vet` passes over the same packages.
//
// Usage:
//
//	voyager-vet [-novet] [-json] [packages]  # default: ./...
//	go vet -vettool=$(which voyager-vet)     # unit-checker protocol
//
// In the first form the tool loads, type-checks, and analyzes every matching
// package, printing findings as file:line:col: [analyzer] message and
// exiting 2 if any are found. With -json the findings are instead emitted on
// stdout as a sorted JSON array of {file, line, col, analyzer, message}
// objects (deterministic across runs, [] when clean) for CI annotation. In the second form it speaks the cmd/go vet
// config-file protocol, so it slots into `go vet -vettool` (replacing the
// standard passes, which cmd/go omits for external tools).
//
// Findings are suppressed with a justification comment on the same line or
// the one above: //lint:allow <analyzer> <why> (nomaporder also accepts
// //lint:ordered <why>). See the "Determinism rules" section of DESIGN.md.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"startvoyager/internal/lint"
)

// selfHash fingerprints this binary for the -V=full handshake.
func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes vettool binaries before use: -V=full must print a
	// version line ending in a buildID (cmd/go caches vet results keyed on
	// it, so hash the binary itself), and -flags must list the tool's
	// flags as JSON.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", os.Args[0], selfHash())
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnitchecker(args[0])
	}

	fs := flag.NewFlagSet("voyager-vet", flag.ExitOnError)
	novet := fs.Bool("novet", false, "skip the standard `go vet` passes")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message) on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: voyager-vet [-novet] [-json] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Determinism analyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(fs.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exit := 0
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		// With -json, stdout is reserved for the findings array; the
		// standard vet passes report on stderr instead.
		if *jsonOut {
			cmd.Stdout = os.Stderr
		} else {
			cmd.Stdout = os.Stdout
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			exit = 2
		}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager-vet:", err)
		return 1
	}
	var findings []lint.Finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "voyager-vet: %s: type error: %v\n", pkg.Path, terr)
			exit = 1
		}
		diags, err := lint.RunAnalyzers(pkg, lint.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "voyager-vet:", err)
			return 1
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if *jsonOut {
				findings = append(findings, lint.Finding{
					File:     relPath(pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Category,
					Message:  d.Message,
				})
			} else {
				fmt.Printf("%s: [%s] %s\n", pos, d.Category, d.Message)
			}
			if exit == 0 {
				exit = 2
			}
		}
	}
	if *jsonOut {
		if err := lint.WriteFindingsJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "voyager-vet:", err)
			return 1
		}
	}
	return exit
}

// relPath rewrites name relative to the working directory when it lies
// beneath it, keeping -json artifacts machine-independent.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
