package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"testing"

	"startvoyager/internal/lint"
)

// runCapture invokes run with stdout redirected to a pipe and returns what it
// printed.
func runCapture(t *testing.T, args []string) (string, int) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	code := run(args)
	os.Stdout = saved
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), code
}

// TestJSONOutputDeterministic runs the suite twice over the same packages
// and requires byte-identical, well-formed JSON both times.
func TestJSONOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages via go list")
	}
	args := []string{"-novet", "-json", "startvoyager/internal/sim", "startvoyager/internal/bus"}
	first, code1 := runCapture(t, args)
	second, code2 := runCapture(t, args)
	if code1 != code2 {
		t.Fatalf("exit codes differ between runs: %d vs %d", code1, code2)
	}
	if first != second {
		t.Fatalf("-json output is not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(first), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, first)
	}
	sorted := append([]lint.Finding(nil), findings...)
	lint.SortFindings(sorted)
	for i := range findings {
		if findings[i] != sorted[i] {
			t.Fatalf("-json output is not sorted at index %d", i)
		}
	}
	if !bytes.HasSuffix([]byte(first), []byte("]\n")) {
		t.Fatalf("-json output does not end with ]\\n: %q", first)
	}
}
