package main

// The cmd/go vet protocol: `go vet -vettool=voyager-vet pkgs...` invokes the
// tool once per package with a single JSON config-file argument describing
// the package's sources and the export data of its (transitive) imports.
// The tool must write its facts file (we keep no cross-package facts, so an
// empty file), print findings to stderr, and exit 2 when it found any.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"

	"startvoyager/internal/lint"
)

// vetConfig mirrors the fields of cmd/go's vet config file that we consume.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "voyager-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "voyager-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	fset := token.NewFileSet()
	pkg, err := lint.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager-vet:", err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	diags, err := lint.RunAnalyzers(pkg, lint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager-vet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
