// voyager-prof renders simulated-time profiles captured by voyager-run or
// voyager-bench with -prof (the voyager-prof/v1 JSON export).
//
// Usage:
//
//	voyager-prof [-top n] profile.json            render the report
//	voyager-prof -folded out.folded profile.json  re-export folded stacks
//	voyager-prof -pprof out.pb profile.json       re-export pprof protobuf
//	voyager-prof -diff [-top n] a.json b.json     self-time delta table
//
// The report shows the hottest frames by self and cumulative simulated time,
// per-group occupancy (busy time over the run length, for node<i>/aP and
// node<i>/sP), and component rollups across nodes (node*/aP, node*/sP). All
// output is byte-deterministic for identical inputs.
//
// Profiles record simulated time, not host time: "self" on a frame is the
// simulated duration procs spent executing (Delay, Call waits) with that
// frame on top of their attribution stack, and wait leaves (wait:<cond>,
// queue:<queue>) are the time spent blocked there.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"startvoyager/internal/prof"
)

func main() {
	topN := flag.Int("top", 10, "rows in the top-N tables")
	folded := flag.String("folded", "", "write folded flame-graph stacks to this file")
	pprofOut := flag.String("pprof", "", "write a pprof protobuf profile to this file")
	diff := flag.Bool("diff", false, "compare two profiles: self-time delta table (args: old.json new.json)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatalf("-diff needs exactly two profile files (old.json new.json)")
		}
		a, err := prof.ReadDocFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		b, err := prof.ReadDocFile(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.WriteDiff(os.Stdout, a, b, *topN); err != nil {
			log.Fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: voyager-prof [-top n] [-folded out] [-pprof out] profile.json")
		fmt.Fprintln(os.Stderr, "       voyager-prof -diff old.json new.json")
		os.Exit(2)
	}
	d, err := prof.ReadDocFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	wrote := false
	if *folded != "" {
		writeFile(*folded, func(f *os.File) error { return d.WriteFolded(f) })
		fmt.Printf("folded: %s\n", *folded)
		wrote = true
	}
	if *pprofOut != "" {
		writeFile(*pprofOut, func(f *os.File) error { return d.WritePprof(f) })
		fmt.Printf("pprof: %s\n", *pprofOut)
		wrote = true
	}
	if wrote {
		return
	}
	if err := d.WriteReport(os.Stdout, *topN); err != nil {
		log.Fatal(err)
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
