// voyager-stats renders a voyager-series/v1 windowed-telemetry export (the
// -series output of voyager-run and voyager-bench) as a deterministic text
// report: top-K hottest links and deepest queues, per-link utilization and
// credit-stall heatmaps across windows, stall attribution (credit stalls,
// retransmits, fault drops) window by window, and — with -match — full
// per-window tables for individual series. This is the scale-phase debugging
// view: a 10^7-message run whose trace ring wrapped hours ago is still
// diagnosable from its O(windows) series file.
//
// Usage:
//
//	voyager-stats [-top k] [-width n] [-match substr] series.json
//
// Reading from stdin when no file is given. Output is byte-deterministic
// for a given input document.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"startvoyager/internal/stats"
)

func main() {
	top := flag.Int("top", 10, "rows in the top-K hottest/deepest lists")
	width := flag.Int("width", 64, "sparkline and heatmap column budget")
	match := flag.String("match", "", "also print full per-window tables for series containing this substring")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		log.Fatalf("usage: voyager-stats [flags] [series.json]")
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	doc, err := stats.ParseSeries(in)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	opts := stats.ReportOpts{TopK: *top, Width: *width, Match: *match}
	if err := stats.WriteReport(os.Stdout, doc, opts); err != nil {
		log.Fatal(err)
	}
	if *match == "" {
		fmt.Println("hint: -match <substr> prints full per-window tables for matching series")
	}
}
