// voyager-bench regenerates the paper's evaluation figures on the simulated
// machine and prints them as tables.
//
// Usage:
//
//	voyager-bench [-fig 3|4|ext-a|ext-b|ext-c|all|none] [-max-size bytes]
//	              [-trace file.json] [-metrics file.json]
//	              [-fault-matrix] [-fault-seeds 1,2,3] [-faults-json file.json]
//
// -trace / -metrics execute the canonical instrumented run (every mechanism
// on a four-node machine) and export its Perfetto trace / metrics registry;
// combine with -fig none to produce only the observability artifacts.
//
// -fault-matrix runs the reliability smoke matrix (drop, corrupt, outage and
// node-death scenarios at each seed in -fault-seeds); -faults-json writes
// every cell's metrics registry to one JSON artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"startvoyager/internal/bench"
	"startvoyager/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, ext-a..ext-l, all, none")
	maxSize := flag.Int("max-size", 256<<10, "largest transfer size in the sweep")
	traceFile := flag.String("trace", "", "write a Perfetto trace of the canonical instrumented run")
	metricsFile := flag.String("metrics", "", "write the canonical run's metrics registry as JSON")
	faultMatrix := flag.Bool("fault-matrix", false, "run the fault-injection smoke matrix")
	faultSeeds := flag.String("fault-seeds", "1,2,3", "comma-separated fault seeds for the matrix")
	faultMsgs := flag.Int("fault-msgs", 30, "reliable messages per fault-matrix cell")
	faultsJSON := flag.String("faults-json", "", "write the fault matrix's per-cell metrics as one JSON file")
	flag.Parse()

	sizes := []int{}
	for _, s := range bench.Fig3Sizes {
		if s <= *maxSize {
			sizes = append(sizes, s)
		}
	}

	ran := false
	if *traceFile != "" || *metricsFile != "" {
		obs := bench.ObservedRun()
		if *traceFile != "" {
			writeFile(*traceFile, func(f *os.File) error { return obs.Trace.WritePerfetto(f) })
			fmt.Printf("trace: %s (simulated %v)\n", *traceFile, obs.SimTime)
		}
		if *metricsFile != "" {
			writeFile(*metricsFile, func(f *os.File) error { return obs.Metrics.WriteJSON(f, obs.SimTime) })
			fmt.Printf("metrics: %s\n", *metricsFile)
		}
		ran = true
	}
	show := func(name string, fn func()) {
		if *fig == "all" || *fig == name {
			fn()
			fmt.Println()
			ran = true
		}
	}
	show("3", func() { fmt.Print(bench.Fig3Latency(sizes)) })
	show("4", func() { fmt.Print(bench.Fig4Bandwidth(sizes)) })
	show("ext-a", func() { fmt.Print(bench.ExtAEarlyNotification(sizes)) })
	show("ext-b", func() { fmt.Print(bench.ExtBOccupancy(64 << 10)) })
	show("ext-c", func() { fmt.Print(bench.ExtCMechanisms()) })
	show("ext-d", func() { fmt.Print(bench.ExtDReflective()) })
	show("ext-e", func() { fmt.Print(bench.ExtEQueueCaching()) })
	show("ext-f", func() { fmt.Print(bench.ExtFCollectives([]int{2, 4, 8, 16})) })
	show("ext-g", func() {
		fmt.Print(bench.ExtGNetworkScaling(64 << 10))
		fmt.Println()
		fmt.Print(bench.ExtGTopology(64 << 10))
	})
	show("ext-h", func() { fmt.Print(bench.ExtHFirmwareSpeed(64 << 10)) })
	show("ext-i", func() { fmt.Print(bench.ExtIMultitasking()) })
	show("ext-j", func() {
		fmt.Print(workload.Table(8, 100, 64, []workload.Pattern{
			workload.Uniform, workload.Hotspot, workload.Neighbor, workload.Transpose}))
	})
	show("ext-k", func() {
		fmt.Print(bench.ExtKProtocolVariants())
		fmt.Println()
		fmt.Print(bench.ExtKStencil(64, 8, 4))
	})
	show("ext-l", func() { fmt.Print(bench.ExtLReliability(50, bench.ExtLDrops)) })
	if *faultMatrix || *faultsJSON != "" {
		var seeds []uint64
		for _, s := range strings.Split(*faultSeeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
			if err != nil {
				log.Fatalf("-fault-seeds: %v", err)
			}
			seeds = append(seeds, v)
		}
		table, runs := bench.FaultMatrix(*faultMsgs, seeds)
		fmt.Print(table)
		fmt.Println()
		if *faultsJSON != "" {
			writeFile(*faultsJSON, func(f *os.File) error { return writeFaultRuns(f, runs) })
			fmt.Printf("fault metrics: %s\n", *faultsJSON)
		}
		ran = true
	}
	if !ran && *fig != "none" {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// writeFaultRuns renders the fault matrix as one JSON document: a summary
// plus the full metrics registry per cell (the CI artifact).
func writeFaultRuns(f *os.File, runs []bench.FaultRun) error {
	type cell struct {
		Scenario  string          `json:"scenario"`
		Seed      uint64          `json:"seed"`
		Delivered int             `json:"delivered"`
		Failed    int             `json:"failed"`
		Metrics   json.RawMessage `json:"metrics"`
	}
	doc := struct {
		Schema string `json:"schema"`
		Cells  []cell `json:"cells"`
	}{Schema: "voyager-fault-matrix/v1"}
	for _, r := range runs {
		var buf bytes.Buffer
		if err := r.Reg.WriteJSON(&buf, r.Now); err != nil {
			return err
		}
		doc.Cells = append(doc.Cells, cell{
			Scenario: r.Scenario, Seed: r.Seed,
			Delivered: r.Delivered, Failed: r.Failed,
			Metrics: json.RawMessage(bytes.TrimSpace(buf.Bytes())),
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = f.Write(append(out, '\n'))
	return err
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
