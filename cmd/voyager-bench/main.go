// voyager-bench regenerates the paper's evaluation figures on the simulated
// machine and prints them as tables.
//
// Usage:
//
//	voyager-bench [-fig 3|4|ext-a|ext-b|ext-c|all|none] [-max-size bytes]
//	              [-trace file.json] [-metrics file.json] [-trace-cap n]
//	              [-series file.json] [-series-window 20us] [-strict-trace]
//	              [-headline file.json] [-diff baseline.json]
//	              [-fault-matrix] [-fault-seeds 1,2,3] [-faults-json file.json]
//	              [-parallel n] [-micro file.json]
//	              [-scale file.json] [-scale-diff baseline.json] [-nodes 64,256,1024]
//	              [-cpuprofile file] [-memprofile file]
//
// -trace / -metrics / -series execute the canonical instrumented run (every
// mechanism on a four-node machine) and export its Perfetto trace / metrics
// registry / windowed voyager-series/v1 telemetry; combine with -fig none to
// produce only the observability artifacts. -strict-trace exits nonzero if
// the canonical run's trace ring dropped events.
//
// -headline writes the deterministic headline latencies (mean traced
// end-to-end latency per MP mechanism) as JSON; -diff recomputes them and
// exits nonzero if any latency regressed more than 10% against the given
// baseline file. BENCH_baseline.json in the repo root is the committed
// baseline that CI diffs against (regenerate with make bench-baseline).
//
// -fault-matrix runs the reliability smoke matrix (drop, corrupt, outage and
// node-death scenarios at each seed in -fault-seeds); -faults-json writes
// every cell's metrics registry to one JSON artifact.
//
// -parallel n fans the independent cells of the headline probe and the fault
// matrix across n worker goroutines. Each cell owns a private engine, so the
// printed tables and JSON artifacts are byte-identical at any -parallel
// value; only wall-clock changes (CI enforces this with a byte-for-byte
// diff, see `make faults-check`).
//
// -micro runs the scheduler/handoff microbenchmark suite and records
// events/sec and allocs/op as JSON (`make bench-micro` keeps
// BENCH_micro.json current). -cpuprofile / -memprofile capture pprof
// profiles of whatever the invocation runs.
//
// -scale runs the machine-size sweep (-nodes, default 64,256,1024): per-node
// heap footprint and construction time, MPI allreduce/samplesort completion,
// and the per-tree-level hotspot saturation profile, written as
// voyager-scale/v1 JSON (`make bench-scale-baseline` keeps BENCH_scale.json
// current). -scale-diff recomputes the sweep and exits nonzero if any
// bytes/node figure regressed more than 10% against the given baseline
// (`make bench-scale` is the CI gate). -nodes also overrides fig ext-f's
// machine sizes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"startvoyager/internal/bench"
	"startvoyager/internal/prof"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, ext-a..ext-l, all, none")
	maxSize := flag.Int("max-size", 256<<10, "largest transfer size in the sweep")
	traceFile := flag.String("trace", "", "write a Perfetto trace of the canonical instrumented run")
	metricsFile := flag.String("metrics", "", "write the canonical run's metrics registry as JSON")
	traceCap := flag.Int("trace-cap", 1<<18, "trace ring capacity for the instrumented run (oldest events drop beyond this)")
	seriesFile := flag.String("series", "", "write the canonical run's windowed telemetry (voyager-series/v1, render with voyager-stats)")
	seriesWindow := flag.String("series-window", "20us", "simulated-time window width for -series (Go duration)")
	strictTrace := flag.Bool("strict-trace", false, "exit nonzero if the canonical run's trace ring dropped events")
	headlineFile := flag.String("headline", "", "write the headline per-mechanism latencies as JSON")
	diffBase := flag.String("diff", "", "diff headline latencies against this baseline JSON; exit 1 on >10% regression")
	faultMatrix := flag.Bool("fault-matrix", false, "run the fault-injection smoke matrix")
	faultSeeds := flag.String("fault-seeds", "1,2,3", "comma-separated fault seeds for the matrix")
	faultMsgs := flag.Int("fault-msgs", 30, "reliable messages per fault-matrix cell")
	faultsJSON := flag.String("faults-json", "", "write the fault matrix's per-cell metrics as one JSON file")
	parallelN := flag.Int("parallel", 1, "worker goroutines for independent sweep cells (output is byte-identical at any value)")
	microFile := flag.String("micro", "", "run the microbenchmark suite and write events/sec + allocs/op as JSON")
	scaleFile := flag.String("scale", "", "run the scale sweep and write bytes/node + sim results as JSON (voyager-scale/v1)")
	scaleDiff := flag.String("scale-diff", "", "diff the scale sweep's bytes/node against this baseline JSON; exit 1 on >10% regression")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts for the scale sweep and fig ext-f (e.g. 64,256,1024)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	profFile := flag.String("prof", "", "write the canonical run's simulated-time profile (voyager-prof/v1 JSON)")
	profFolded := flag.String("prof-folded", "", "write the canonical run's profile as folded flame-graph stacks")
	profPprof := flag.String("prof-pprof", "", "write the canonical run's profile as pprof protobuf")
	flag.Parse()
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	sizes := []int{}
	for _, s := range bench.Fig3Sizes {
		if s <= *maxSize {
			sizes = append(sizes, s)
		}
	}

	ran := false
	profiling := *profFile != "" || *profFolded != "" || *profPprof != ""
	if *traceFile != "" || *metricsFile != "" || *seriesFile != "" || *strictTrace || profiling {
		var scfg *stats.SamplerConfig
		if *seriesFile != "" {
			w, err := time.ParseDuration(*seriesWindow)
			if err != nil || w <= 0 {
				log.Fatalf("-series-window: invalid duration %q", *seriesWindow)
			}
			scfg = &stats.SamplerConfig{Window: sim.Time(w.Nanoseconds())}
		}
		var profiler *prof.Profiler
		if profiling {
			profiler = prof.New()
		}
		obs := bench.ObservedRunProf(*traceCap, scfg, profiler)
		meta := &stats.RunMeta{Tool: "voyager-bench", Mechanism: "mixed", Nodes: 4,
			SimTimeNs: int64(obs.SimTime)}
		if *traceFile != "" {
			writeFile(*traceFile, func(f *os.File) error { return obs.Trace.WritePerfetto(f) })
			fmt.Printf("trace: %s (simulated %v)\n", *traceFile, obs.SimTime)
		}
		if *metricsFile != "" {
			writeFile(*metricsFile, func(f *os.File) error { return obs.Metrics.WriteJSONMeta(f, obs.SimTime, meta) })
			fmt.Printf("metrics: %s\n", *metricsFile)
		}
		if *seriesFile != "" {
			writeFile(*seriesFile, func(f *os.File) error { return obs.Series.WriteJSON(f, meta) })
			fmt.Printf("series: %s (%d windows, render with voyager-stats)\n", *seriesFile, obs.Series.Windows())
		}
		if profiling {
			doc := profiler.Doc(meta)
			if *profFile != "" {
				writeFile(*profFile, func(f *os.File) error { return doc.WriteJSON(f) })
				fmt.Printf("prof: %s (render with voyager-prof)\n", *profFile)
			}
			if *profFolded != "" {
				writeFile(*profFolded, func(f *os.File) error { return doc.WriteFolded(f) })
				fmt.Printf("prof-folded: %s\n", *profFolded)
			}
			if *profPprof != "" {
				writeFile(*profPprof, func(f *os.File) error { return doc.WritePprof(f) })
				fmt.Printf("prof-pprof: %s\n", *profPprof)
			}
		}
		if d := obs.Trace.Stats().Dropped; d > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: trace ring dropped %d events; the trace is truncated (raise -trace-cap)\n", d)
			if *strictTrace {
				stopProfiles()
				os.Exit(1)
			}
		}
		ran = true
	}
	if *headlineFile != "" || *diffBase != "" {
		latencies := bench.HeadlineLatencies(*parallelN)
		if *headlineFile != "" {
			writeFile(*headlineFile, func(f *os.File) error { return writeHeadline(f, latencies) })
			fmt.Printf("headline: %s\n", *headlineFile)
		}
		if *diffBase != "" {
			if !diffHeadline(*diffBase, latencies) {
				stopProfiles()
				os.Exit(1)
			}
		}
		ran = true
	}
	var nodeCounts []int
	if *nodesFlag != "" {
		var err error
		nodeCounts, err = bench.ParseNodeList(*nodesFlag)
		if err != nil {
			log.Fatalf("-nodes: %v", err)
		}
	}
	if *scaleFile != "" || *scaleDiff != "" {
		// Read the baseline before anything writes to its path — -scale and
		// -scale-diff may legitimately point at the same file.
		var baseline []byte
		if *scaleDiff != "" {
			var err error
			baseline, err = os.ReadFile(*scaleDiff)
			if err != nil {
				log.Fatalf("-scale-diff: %v", err)
			}
		}
		results := bench.RunScale(bench.ScaleOpts{NodeCounts: nodeCounts})
		fmt.Print(bench.ScaleTable(results))
		fmt.Println()
		fmt.Print(bench.SaturationTable(results[len(results)-1]))
		fmt.Println()
		fmt.Print(bench.ScaleFootprintTable(results))
		fmt.Println()
		if *scaleFile != "" {
			writeFile(*scaleFile, func(f *os.File) error { return bench.WriteScale(f, results) })
			fmt.Printf("scale: %s\n", *scaleFile)
		}
		if baseline != nil && !bench.DiffScale(baseline, results, os.Stdout) {
			stopProfiles()
			os.Exit(1)
		}
		ran = true
	}
	if *microFile != "" {
		results := bench.MicroBench()
		writeFile(*microFile, func(f *os.File) error { return bench.WriteMicro(f, results) })
		for _, r := range results {
			fmt.Printf("micro: %-28s %12.1f ns/op %14.0f ops/s %6d allocs/op\n",
				r.Name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
		}
		fmt.Printf("micro: %s\n", *microFile)
		ran = true
	}
	show := func(name string, fn func()) {
		if *fig == "all" || *fig == name {
			fn()
			fmt.Println()
			ran = true
		}
	}
	show("3", func() { fmt.Print(bench.Fig3Latency(sizes)) })
	show("4", func() { fmt.Print(bench.Fig4Bandwidth(sizes)) })
	show("ext-a", func() { fmt.Print(bench.ExtAEarlyNotification(sizes)) })
	show("ext-b", func() { fmt.Print(bench.ExtBOccupancy(64 << 10)) })
	show("ext-c", func() { fmt.Print(bench.ExtCMechanisms()) })
	show("ext-d", func() { fmt.Print(bench.ExtDReflective()) })
	show("ext-e", func() { fmt.Print(bench.ExtEQueueCaching()) })
	show("ext-f", func() {
		counts := nodeCounts
		if counts == nil {
			counts = []int{2, 4, 8, 16}
		}
		fmt.Print(bench.ExtFCollectives(counts))
	})
	show("ext-g", func() {
		fmt.Print(bench.ExtGNetworkScaling(64 << 10))
		fmt.Println()
		fmt.Print(bench.ExtGTopology(64 << 10))
	})
	show("ext-h", func() { fmt.Print(bench.ExtHFirmwareSpeed(64 << 10)) })
	show("ext-i", func() { fmt.Print(bench.ExtIMultitasking()) })
	show("ext-j", func() {
		fmt.Print(workload.Table(8, 100, 64, []workload.Pattern{
			workload.Uniform, workload.Hotspot, workload.Neighbor, workload.Transpose}))
	})
	show("ext-k", func() {
		fmt.Print(bench.ExtKProtocolVariants())
		fmt.Println()
		fmt.Print(bench.ExtKStencil(64, 8, 4))
	})
	show("ext-l", func() { fmt.Print(bench.ExtLReliability(50, bench.ExtLDrops)) })
	if *faultMatrix || *faultsJSON != "" {
		var seeds []uint64
		for _, s := range strings.Split(*faultSeeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
			if err != nil {
				log.Fatalf("-fault-seeds: %v", err)
			}
			seeds = append(seeds, v)
		}
		table, runs := bench.FaultMatrix(*faultMsgs, seeds, *parallelN)
		fmt.Print(table)
		fmt.Println()
		if *faultsJSON != "" {
			writeFile(*faultsJSON, func(f *os.File) error { return writeFaultRuns(f, runs) })
			fmt.Printf("fault metrics: %s\n", *faultsJSON)
		}
		ran = true
	}
	if !ran && *fig != "none" {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		stopProfiles()
		os.Exit(2)
	}
}

// headlineDoc is the on-disk shape of BENCH_baseline.json: the deterministic
// headline latencies, keyed "<mechanism>_e2e_mean_ns".
type headlineDoc struct {
	Schema    string           `json:"schema"`
	Latencies map[string]int64 `json:"latencies"`
}

func writeHeadline(f *os.File, latencies map[string]int64) error {
	out, err := json.MarshalIndent(headlineDoc{
		Schema: "voyager-headline/v1", Latencies: latencies,
	}, "", "  ")
	if err != nil {
		return err
	}
	_, err = f.Write(append(out, '\n'))
	return err
}

// diffHeadline compares freshly computed headline latencies against the
// committed baseline and reports every entry. Returns false — the CI failure
// signal — when any latency exceeds its baseline by more than 10%.
func diffHeadline(path string, latencies map[string]int64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("-diff: %v", err)
	}
	var base headlineDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("-diff %s: %v", path, err)
	}
	keys := make([]string, 0, len(base.Latencies))
	for k := range base.Latencies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ok := true
	for _, k := range keys {
		was := base.Latencies[k]
		now, found := latencies[k]
		if !found {
			fmt.Printf("bench-diff: %-24s MISSING (baseline %dns)\n", k, was)
			ok = false
			continue
		}
		pct := 100 * float64(now-was) / float64(was)
		verdict := "ok"
		if now > was+was/10 {
			verdict = "REGRESSED"
			ok = false
		}
		fmt.Printf("bench-diff: %-24s %8dns -> %8dns (%+.1f%%) %s\n", k, was, now, pct, verdict)
	}
	for k := range latencies {
		if _, found := base.Latencies[k]; !found {
			fmt.Printf("bench-diff: %-24s %8dns (new; not in baseline — refresh with make bench-baseline)\n", k, latencies[k])
		}
	}
	if !ok {
		fmt.Println("bench-diff: FAIL — headline latency regressed >10% (refresh BENCH_baseline.json via make bench-baseline if intentional)")
	}
	return ok
}

// writeFaultRuns renders the fault matrix as one JSON document: a summary
// plus the full metrics registry per cell (the CI artifact).
func writeFaultRuns(f *os.File, runs []bench.FaultRun) error {
	type cell struct {
		Scenario  string          `json:"scenario"`
		Seed      uint64          `json:"seed"`
		Delivered int             `json:"delivered"`
		Failed    int             `json:"failed"`
		Metrics   json.RawMessage `json:"metrics"`
	}
	doc := struct {
		Schema string `json:"schema"`
		Cells  []cell `json:"cells"`
	}{Schema: "voyager-fault-matrix/v1"}
	for _, r := range runs {
		var buf bytes.Buffer
		if err := r.Reg.WriteJSON(&buf, r.Now); err != nil {
			return err
		}
		doc.Cells = append(doc.Cells, cell{
			Scenario: r.Scenario, Seed: r.Seed,
			Delivered: r.Delivered, Failed: r.Failed,
			Metrics: json.RawMessage(bytes.TrimSpace(buf.Bytes())),
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = f.Write(append(out, '\n'))
	return err
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// startProfiles starts the requested pprof captures and returns the stop
// function that finalizes them; it must run before every exit path (os.Exit
// skips deferred calls).
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuF = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC() // flush recent frees so the profile shows live heap accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}
}
