// voyager-bench regenerates the paper's evaluation figures on the simulated
// machine and prints them as tables.
//
// Usage:
//
//	voyager-bench [-fig 3|4|ext-a|ext-b|ext-c|all|none] [-max-size bytes]
//	              [-trace file.json] [-metrics file.json]
//
// -trace / -metrics execute the canonical instrumented run (every mechanism
// on a four-node machine) and export its Perfetto trace / metrics registry;
// combine with -fig none to produce only the observability artifacts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"startvoyager/internal/bench"
	"startvoyager/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, ext-a..ext-k, all, none")
	maxSize := flag.Int("max-size", 256<<10, "largest transfer size in the sweep")
	traceFile := flag.String("trace", "", "write a Perfetto trace of the canonical instrumented run")
	metricsFile := flag.String("metrics", "", "write the canonical run's metrics registry as JSON")
	flag.Parse()

	sizes := []int{}
	for _, s := range bench.Fig3Sizes {
		if s <= *maxSize {
			sizes = append(sizes, s)
		}
	}

	ran := false
	if *traceFile != "" || *metricsFile != "" {
		obs := bench.ObservedRun()
		if *traceFile != "" {
			writeFile(*traceFile, func(f *os.File) error { return obs.Trace.WritePerfetto(f) })
			fmt.Printf("trace: %s (simulated %v)\n", *traceFile, obs.SimTime)
		}
		if *metricsFile != "" {
			writeFile(*metricsFile, func(f *os.File) error { return obs.Metrics.WriteJSON(f, obs.SimTime) })
			fmt.Printf("metrics: %s\n", *metricsFile)
		}
		ran = true
	}
	show := func(name string, fn func()) {
		if *fig == "all" || *fig == name {
			fn()
			fmt.Println()
			ran = true
		}
	}
	show("3", func() { fmt.Print(bench.Fig3Latency(sizes)) })
	show("4", func() { fmt.Print(bench.Fig4Bandwidth(sizes)) })
	show("ext-a", func() { fmt.Print(bench.ExtAEarlyNotification(sizes)) })
	show("ext-b", func() { fmt.Print(bench.ExtBOccupancy(64 << 10)) })
	show("ext-c", func() { fmt.Print(bench.ExtCMechanisms()) })
	show("ext-d", func() { fmt.Print(bench.ExtDReflective()) })
	show("ext-e", func() { fmt.Print(bench.ExtEQueueCaching()) })
	show("ext-f", func() { fmt.Print(bench.ExtFCollectives([]int{2, 4, 8, 16})) })
	show("ext-g", func() {
		fmt.Print(bench.ExtGNetworkScaling(64 << 10))
		fmt.Println()
		fmt.Print(bench.ExtGTopology(64 << 10))
	})
	show("ext-h", func() { fmt.Print(bench.ExtHFirmwareSpeed(64 << 10)) })
	show("ext-i", func() { fmt.Print(bench.ExtIMultitasking()) })
	show("ext-j", func() {
		fmt.Print(workload.Table(8, 100, 64, []workload.Pattern{
			workload.Uniform, workload.Hotspot, workload.Neighbor, workload.Transpose}))
	})
	show("ext-k", func() {
		fmt.Print(bench.ExtKProtocolVariants())
		fmt.Println()
		fmt.Print(bench.ExtKStencil(64, 8, 4))
	})
	if !ran && *fig != "none" {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
