// voyager-path runs an instrumented message-passing workload and prints the
// causal critical-path report: every traced message's lifecycle reconstructed
// from the event ring, with its end-to-end latency attributed to named
// pipeline stages (tx-queue-wait, bus-tenure, net-flight, rx-queue-wait,
// sp-dispatch, retransmit-penalty, ...) — the paper's Section 6 style
// "where does each microsecond go" breakdown, per mechanism.
//
// Usage:
//
//	voyager-path [-nodes n] [-mech basic|express|tagon|dma|reliable] [-count c]
//	             [-size s] [-faults plan] [-top n] [-json] [-metrics file.json]
//	             [-trace file.json] [-trace-cap n]
//
// Output is deterministic: two runs with the same arguments produce
// byte-identical reports. -json replaces the text waterfall with the
// voyager-path/v1 JSON document (run metadata, summary counts, aggregate
// stage attribution, and every chain's per-stage breakdown) on stdout. -top limits the per-message waterfall blocks to the
// n slowest delivered messages (0 = all). -metrics adds the per-stage latency
// histograms to the dumped registry under path/. -trace writes the Perfetto
// export, whose flow arrows link each message's events across tracks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of nodes (all-to-one traffic)")
	mech := flag.String("mech", "basic", "mechanism: basic, express, tagon, dma, reliable")
	count := flag.Int("count", 8, "messages (or transfers) per sender")
	size := flag.Int("size", 32, "payload bytes (dma: transfer bytes, line-aligned)")
	faults := flag.String("faults", "", "fault-injection plan (e.g. 'seed=7,drop=0.05')")
	top := flag.Int("top", 0, "show only the n slowest delivered messages (0 = all)")
	jsonOut := flag.Bool("json", false, "emit the voyager-path/v1 JSON document instead of the text waterfall")
	metricsFile := flag.String("metrics", "", "write the metrics registry (with path/ histograms) as JSON")
	traceFile := flag.String("trace", "", "write a Perfetto trace with per-message flow arrows")
	traceCap := flag.Int("trace-cap", 1<<19, "trace ring capacity (oldest events drop beyond this)")
	flag.Parse()

	cfg := cluster.DefaultConfig(*nodes)
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		cfg.Faults = plan
	}
	m := core.NewMachineConfig(cfg)
	tbuf := m.Trace(*traceCap)

	senders := *nodes - 1
	total := senders * *count
	received := 0
	sendersDone := 0
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		if *mech == "reliable" {
			for {
				if _, _, err := a.RecvReliableTimeout(p, m.RelBound()); err != nil {
					if sendersDone == senders {
						return
					}
					continue
				}
				received++
			}
		}
		for received < total {
			switch *mech {
			case "basic", "tagon":
				if _, _, ok := a.TryRecvBasic(p); ok {
					received++
				}
			case "express":
				if _, _, ok := a.TryRecvExpress(p); ok {
					received++
				}
			case "dma":
				a.RecvNotify(p)
				received++
			}
		}
	})
	for i := 1; i < *nodes; i++ {
		i := i
		m.Go(i, "src", func(p *sim.Proc, a *core.API) {
			for k := 0; k < *count; k++ {
				switch *mech {
				case "basic":
					a.SendBasic(p, 0, make([]byte, min(*size, core.MaxBasicPayload)))
				case "tagon":
					a.SendTagOn(p, 0, []byte{byte(k)}, 0x400, 16)
				case "express":
					a.SendExpress(p, 0, []byte{byte(k)})
					a.Compute(p, 2*sim.Microsecond) // pace: express drops on overflow
				case "reliable":
					if err := a.SendReliable(p, 0, make([]byte, min(*size, core.MaxReliablePayload))); err != nil {
						fmt.Fprintf(os.Stderr, "reliable send failed: %v\n", err)
					}
				case "dma":
					n := *size &^ 31
					if n == 0 {
						n = 32
					}
					a.DmaPush(p, 0, 0x10_0000, uint32(0x20_0000+i*0x1_0000), n, uint32(k))
				default:
					log.Fatalf("unknown mechanism %q", *mech)
				}
			}
			sendersDone++
		})
	}
	m.Run()

	analysis := trace.AnalyzePaths(tbuf.Events())
	if *top > 0 {
		analysis = analysis.Slowest(*top)
	}
	meta := &stats.RunMeta{Tool: "voyager-path", Mechanism: *mech, Nodes: *nodes,
		FaultPlan: *faults, SimTimeNs: int64(m.Eng.Now())}
	if cfg.Faults != nil {
		meta.Seed = cfg.Faults.Seed
	}
	if *jsonOut {
		// Pure JSON on stdout: the header line would corrupt the document.
		if err := analysis.WriteJSON(os.Stdout, meta); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("mechanism=%s nodes=%d senders=%d count=%d simulated=%v\n\n",
			*mech, *nodes, senders, *count, m.Eng.Now())
		if err := analysis.WriteWaterfall(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *metricsFile != "" {
		analysis.RegisterMetrics(m.Metrics().Child("path"))
		writeFile(*metricsFile, func(f *os.File) error {
			return m.Metrics().WriteJSONMeta(f, m.Eng.Now(), meta)
		})
		if !*jsonOut {
			fmt.Printf("\nmetrics: %s\n", *metricsFile)
		}
	}
	if *traceFile != "" {
		writeFile(*traceFile, func(f *os.File) error { return tbuf.WritePerfetto(f) })
		if !*jsonOut {
			fmt.Printf("\ntrace: %s\n", *traceFile)
		}
	}
	if d := tbuf.Stats().Dropped; d > 0 {
		fmt.Fprintf(os.Stderr, "WARNING: trace ring dropped %d events; chains may be orphaned (raise -trace-cap)\n", d)
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
