// voyager-chaos runs the deterministic chaos harness: it fuzzes fault plans
// over the -faults grammar, runs each (mechanism, seed, plan) cell on a
// private machine, and checks machine-wide invariant oracles — exactly-once
// reliable delivery, packet conservation, end-of-run quiescence, telescoping
// trace attribution, metric sanity, and shared-memory linearizability. Cells
// run under a sim-time watchdog, so a protocol deadlock becomes a structured
// finding instead of a hung process, and -shrink reduces each failing cell
// to a minimal reproduction.
//
// Usage:
//
//	voyager-chaos [-seed n] [-cells n] [-msgs n] [-nodes n] [-mech list]
//	              [-parallel n] [-budget dur] [-shrink] [-out file]
//
// The report is byte-identical for a given flag set at any -parallel value;
// CI diffs it against the committed CHAOS_findings.json baseline. Exit
// status is 1 when any oracle found a violation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"startvoyager/internal/chaos"
	"startvoyager/internal/fault"
)

func main() {
	seed := flag.Uint64("seed", 1, "master seed; every cell's plan and workload derive from it")
	cells := flag.Int("cells", 24, "number of fuzz cells")
	msgs := flag.Int("msgs", 8, "messages per sender (ops per node for scoma)")
	nodes := flag.Int("nodes", 4, "machine size per cell")
	mech := flag.String("mech", "", "comma-separated mechanism rotation (default reliable,basic,scoma)")
	parallel := flag.Int("parallel", 1, "worker fan-out across cells (results are identical at any value)")
	budget := flag.String("budget", "", "sim-time budget per cell, e.g. 5ms (default: derived per mechanism)")
	shrink := flag.Bool("shrink", false, "reduce each failing cell to a minimal reproduction")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()
	if flag.NArg() != 0 {
		log.Fatalf("usage: voyager-chaos [flags]")
	}

	cfg := chaos.Config{
		Seed: *seed, Cells: *cells, Msgs: *msgs, Nodes: *nodes,
		Workers: *parallel, Shrink: *shrink,
	}
	if *mech != "" {
		for _, m := range strings.Split(*mech, ",") {
			m = strings.TrimSpace(m)
			switch m {
			case chaos.MechReliable, chaos.MechBasic, chaos.MechScoma:
				cfg.Mechs = append(cfg.Mechs, m)
			default:
				log.Fatalf("unknown mechanism %q (valid: %s)", m, strings.Join(chaos.DefaultMechs, ", "))
			}
		}
	}
	if *budget != "" {
		d, err := fault.ParseTime(*budget)
		if err != nil {
			log.Fatalf("-budget: %v", err)
		}
		cfg.Budget = d
	}

	rep := chaos.Run(cfg)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "voyager-chaos: %d cells (%s), seed %d: %d findings\n",
		cfg.Cells, strings.Join(rep.Mechs, ","), cfg.Seed, len(rep.Findings))
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}
