package startvoyager_test

import (
	"fmt"
	"testing"

	"startvoyager/internal/bench"
	"startvoyager/internal/blockxfer"
	"startvoyager/internal/stats"
)

// The benchmarks below regenerate every figure of the paper's evaluation
// (plus this reproduction's extension experiments) and report the simulated
// quantities as custom metrics:
//
//	sim-lat-ns      latency of one transfer (simulated ns)
//	sim-bw-MBps     steady-state bandwidth
//	sim-*-busy-ns   processor occupancy
//
// Wall-clock ns/op measures only the simulator's own speed.

var fig34Approaches = []blockxfer.Approach{blockxfer.A1, blockxfer.A2, blockxfer.A3}

var benchSizes = []int{1 << 10, 16 << 10, 64 << 10}

// BenchmarkFig3Latency regenerates Figure 3 (latency of approaches 1-3).
func BenchmarkFig3Latency(b *testing.B) {
	for _, a := range fig34Approaches {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%v/%s", a, stats.FormatBytes(size)), func(b *testing.B) {
				var m blockxfer.Metrics
				for i := 0; i < b.N; i++ {
					m = blockxfer.MeasureLatency(a, size)
				}
				b.ReportMetric(float64(m.Latency), "sim-lat-ns")
			})
		}
	}
}

// BenchmarkFig4Bandwidth regenerates Figure 4 (bandwidth of approaches 1-3).
func BenchmarkFig4Bandwidth(b *testing.B) {
	for _, a := range fig34Approaches {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%v/%s", a, stats.FormatBytes(size)), func(b *testing.B) {
				var bw float64
				for i := 0; i < b.N; i++ {
					bw = blockxfer.MeasureBandwidth(a, size)
				}
				b.ReportMetric(bw, "sim-bw-MBps")
			})
		}
	}
}

// BenchmarkExtAEarlyNotification measures approaches 4-5 (the variants the
// paper describes without numbers): notification and consume-done latency.
func BenchmarkExtAEarlyNotification(b *testing.B) {
	for _, a := range []blockxfer.Approach{blockxfer.A3, blockxfer.A4, blockxfer.A5} {
		b.Run(fmt.Sprintf("%v/64KB", a), func(b *testing.B) {
			var m blockxfer.Metrics
			for i := 0; i < b.N; i++ {
				m = blockxfer.MeasureLatency(a, 64<<10)
			}
			b.ReportMetric(float64(m.NotifyAt), "sim-notify-ns")
			b.ReportMetric(float64(m.ConsumeDone), "sim-consume-ns")
		})
	}
}

// BenchmarkExtBOccupancy reports per-approach aP/sP occupancy for a 32 KB
// transfer.
func BenchmarkExtBOccupancy(b *testing.B) {
	for _, a := range []blockxfer.Approach{blockxfer.A1, blockxfer.A2, blockxfer.A3,
		blockxfer.A4, blockxfer.A5} {
		b.Run(a.String(), func(b *testing.B) {
			var m blockxfer.Metrics
			for i := 0; i < b.N; i++ {
				m = blockxfer.MeasureLatency(a, 32<<10)
			}
			b.ReportMetric(float64(m.APSrcBusy), "sim-aPsrc-busy-ns")
			b.ReportMetric(float64(m.SPSrcBusy), "sim-sPsrc-busy-ns")
			b.ReportMetric(float64(m.SPDstBusy), "sim-sPdst-busy-ns")
		})
	}
}

// BenchmarkExtDReflective compares reflective-memory implementations
// (firmware vs aBIU hardware vs deferred diff flushing).
func BenchmarkExtDReflective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ExtDReflective()
	}
}

// BenchmarkExtEQueueCaching measures resident vs non-resident receive-queue
// delivery.
func BenchmarkExtEQueueCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ExtEQueueCaching()
	}
}

// BenchmarkExtFCollectives measures MPI collective scaling on the fat tree.
func BenchmarkExtFCollectives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ExtFCollectives([]int{2, 4, 8})
	}
}

// BenchmarkExtGNetworkScaling reruns Figure 4 with faster links: only the
// hardware approach can exploit the extra wire.
func BenchmarkExtGNetworkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ExtGNetworkScaling(64 << 10)
	}
}

// BenchmarkExtCMechanisms characterizes the Section 5 mechanisms.
func BenchmarkExtCMechanisms(b *testing.B) {
	mechs := bench.MeasureMechanisms()
	for idx, r := range mechs {
		idx, r := idx, r
		b.Run(r.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r = bench.MeasureMechanisms()[idx]
			}
			b.ReportMetric(float64(r.OneWay), "sim-oneway-ns")
			if r.Throughput > 0 {
				b.ReportMetric(r.Throughput, "sim-tput-MBps")
			}
		})
	}
}
